"""Scale-out acceleration across the physical FPGA boundary.

The Programming Layer's "single, infinitely large FPGA": a large
accelerator is compiled once with no knowledge of device boundaries; when
no single board has room, the runtime transparently splits it across
boards, and the latency-insensitive interface absorbs the inter-FPGA
ring's latency.  The second half of the example drives a cycle-level
simulation of the resulting cross-ring channel to show it sustains full
bandwidth and that the deployment-level overhead is negligible.

Run:  python examples/scale_out_acceleration.py
"""

from repro import ViTALStack, benchmark
from repro.interconnect.links import LINKS, LinkClass
from repro.interconnect.simulator import measure_channel_bandwidth


def main() -> None:
    stack = ViTALStack()
    big = stack.compile(benchmark("resnet18", "L"))
    filler = stack.compile(benchmark("alexnet", "M"))
    print(f"{big.name}: needs {big.num_blocks} blocks; each board has "
          f"{stack.cluster.blocks_per_board}")

    # fragment the cluster so no single board can host the big app
    live = []
    while (d := stack.deploy(filler)) is not None:
        live.append(d)
    # free fragments on *different* boards so no single board can host it
    freed = 0
    freed_boards: set[int] = set()
    for d in list(live):
        if freed >= big.num_blocks:
            break
        board = d.placement.boards[0]
        if board in freed_boards:
            continue
        stack.release(d)
        live.remove(d)
        freed += d.num_blocks
        freed_boards.add(board)
    free_per_board = {
        b: sum(1 for (bb, _) in set(stack.cluster.all_addresses())
               - {a for dep in live for a in dep.placement.addresses}
               if bb == b)
        for b in range(stack.cluster.num_boards)}
    print(f"free blocks per board after fragmentation: {free_per_board}")

    deployment = stack.deploy(big)
    assert deployment is not None, "scale-out deployment failed"
    print(f"deployed across boards {deployment.placement.boards} "
          f"(spans FPGAs: {deployment.spans_boards})")
    print(f"  communication slowdown: {deployment.comm_slowdown:.4f}x")
    print(f"  latency overhead: "
          f"{deployment.latency_overhead_fraction:.2e} of service time "
          "(paper reports <0.03%)")

    if deployment.spans_boards:
        link = LINKS[LinkClass.INTER_FPGA]
        bw, lat = measure_channel_bandwidth(LinkClass.INTER_FPGA,
                                            cycles=50000)
        print(f"\ncycle-level check of the cross-ring channel: "
              f"{bw:.1f} Gb/s sustained of {link.bandwidth_gbps:.0f} "
              f"Gb/s capacity, {lat:.0f} cycles latency")

    stack.release(deployment)
    for d in live:
        stack.release(d)
    print("\nreleased everything; utilization "
          f"{stack.utilization():.0%}")


if __name__ == "__main__":
    main()
