"""Virtualizing a heterogeneous cluster (the paper's Section 7 outlook).

Builds a mixed cluster -- two XCVU37P boards and two larger VU13P
boards -- and shows the abstraction absorbing the difference: each device
type contributes its own footprint group of identical blocks, every
kernel is compiled once per group, and the runtime places each request on
whichever group has room.  Tenants still see a single large FPGA.

Run:  python examples/heterogeneous_cluster.py
"""

from collections import Counter

from repro.cluster.cluster import make_heterogeneous_cluster
from repro.hls.kernels import benchmark
from repro.runtime.hetero import HeterogeneousStack
from repro.runtime.isolation import verify_isolation


def main() -> None:
    cluster = make_heterogeneous_cluster(
        ["XCVU37P", "XCVU37P", "VU13P", "VU13P"])
    print("mixed cluster:")
    for board in cluster.boards:
        block = board.partition.block_capacity
        print(f"  board{board.board_id}: {board.device.name:8s} "
              f"{board.num_blocks:2d} blocks of {block}")

    stack = HeterogeneousStack(cluster)
    spec = benchmark("svhn", "L")
    artifacts = stack.compile(spec)
    print(f"\n{spec.name} compiled once per footprint group:")
    for footprint, app in artifacts.items():
        print(f"  {footprint}: {app.num_blocks} blocks, "
              f"fmax {app.fmax_mhz:.0f} MHz")

    live = []
    while (d := stack.deploy(spec)) is not None:
        live.append(d)
    by_device = Counter(
        cluster.board(d.placement.boards[0]).device.name for d in live)
    print(f"\ndeployed {len(live)} concurrent copies: {dict(by_device)}")
    verify_isolation(stack.controller)
    print("isolation verified across device types")

    for d in live:
        stack.release(d)
    print(f"released; utilization {stack.controller.utilization():.0%}")


if __name__ == "__main__":
    main()
