"""From gate-level RTL to a deployed cloud accelerator.

The other examples start from resource footprints (the HLS route); this
one walks the Fig. 3b back-end for real: build a gate-level design (a
64-bit parity/popcount datapath), technology-map it onto 6-input LUTs
with proved functional equivalence, lower it to the physical netlist IR,
and push it through ViTAL's partition -> interface -> P&R -> deploy
pipeline like any other tenant.

Run:  python examples/rtl_to_cloud.py
"""

import random

from repro import ViTALStack, custom_kernel
from repro.compiler.techmap import technology_map
from repro.netlist.logic import GateOp, LogicNetwork


def build_parity_datapath(width: int = 64) -> LogicNetwork:
    """Registered parity + zero-detect over a ``width``-bit input."""
    net = LogicNetwork("parity64")
    bits = [net.add_input(f"d{i}") for i in range(width)]
    # XOR reduction tree
    level = bits
    while len(level) > 1:
        level = [net.add_gate(GateOp.XOR, a, b)
                 for a, b in zip(level[::2], level[1::2])]
    parity = net.add_ff(level[0], name="parity_q")
    # OR reduction for zero-detect
    level = bits
    while len(level) > 1:
        level = [net.add_gate(GateOp.OR, a, b)
                 for a, b in zip(level[::2], level[1::2])]
    nonzero = net.add_ff(level[0], name="nonzero_q")
    net.set_output("parity", parity)
    net.set_output("nonzero", nonzero)
    return net


def main() -> None:
    logic = build_parity_datapath()
    print(f"RTL: {logic.num_gates} gates, depth {logic.depth()}")

    mapped = technology_map(logic, k=6)
    print(f"mapped: {mapped.num_luts} LUT6 + {len(mapped.flops)} FF, "
          f"LUT depth {mapped.depth()}")

    # prove equivalence on random vectors before shipping
    rng = random.Random(1)
    st_ref, st_map = {}, {}
    for _ in range(64):
        vec = {f"d{i}": rng.random() < 0.5 for i in range(64)}
        ref, st_ref = logic.evaluate(vec, st_ref)
        got, st_map = mapped.evaluate(vec, st_map)
        assert ref == got
    print("equivalence check: 64 random cycles, mapped == RTL")

    netlist = mapped.to_netlist()
    usage = netlist.resource_usage()
    print(f"lowered netlist: {netlist.num_primitives} primitives, "
          f"{usage}")

    stack = ViTALStack()
    spec = custom_kernel("parity64", lut=max(usage.lut, 1),
                         dff=max(usage.dff, 1), dsp=0, bram_mb=0,
                         service_time_s=5.0)
    app = stack.flow.compile(spec, netlist=netlist)
    stack.controller.register(app)
    deployment = stack.controller.try_deploy(app, 0, 0.0)
    print(f"deployed {app.name}: {app.num_blocks} block(s) on boards "
          f"{deployment.placement.boards}, fmax {app.fmax_mhz:.0f} MHz")
    stack.controller.release(deployment)
    print("released")


if __name__ == "__main__":
    main()
