"""Quickstart: compile once, deploy anywhere.

Builds the paper's 4x XCVU37P cluster, compiles one Table 2 accelerator
against the homogeneous abstraction, deploys it (twice -- note the second
copy lands on different physical blocks with the *same* bitstream), and
tears everything down.

Run:  python examples/quickstart.py
"""

from repro import ViTALStack, benchmark


def main() -> None:
    stack = ViTALStack()
    print(stack.status()["cluster"])
    print(stack.cluster.partition.describe())
    print()

    # offline: one compilation against the virtual-block abstraction
    spec = benchmark("svhn", "L")
    app = stack.compile(spec)
    print(f"compiled {app.name}: {app.num_blocks} virtual blocks, "
          f"fmax {app.fmax_mhz:.0f} MHz, "
          f"{len(app.interface.channels)} latency-insensitive channels")
    print(f"  modeled vendor-flow compile time: "
          f"{app.breakdown.total_s / 60:.0f} min "
          f"(P&R {app.breakdown.pnr_fraction:.0%}, "
          f"custom tools {app.breakdown.custom_fraction:.1%})")
    print()

    # runtime: deployment is allocation + relocation + partial reconfig
    first = stack.deploy(app)
    second = stack.deploy(app)
    for label, d in (("first", first), ("second", second)):
        print(f"{label} copy -> boards {d.placement.boards}, "
              f"blocks {sorted(d.placement.addresses)[:3]}..., "
              f"reconfig {d.reconfig_time_s * 1e3:.0f} ms")
    assert set(first.placement.addresses).isdisjoint(
        second.placement.addresses)

    stack.check_isolation()
    print(f"\ncluster utilization: {stack.utilization():.0%}")

    stack.release(first)
    stack.release(second)
    print(f"after release: {stack.utilization():.0%}")


if __name__ == "__main__":
    main()
