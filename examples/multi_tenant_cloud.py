"""A day in a multi-tenant FPGA cloud.

Replays one synthetic workload set (Table 3, set 7: a mix of small,
medium and large DNN accelerators arriving at random intervals) against
four resource managers and reports the quality-of-service each delivers --
a miniature of the paper's Fig. 9 experiment.

Run:  python examples/multi_tenant_cloud.py
"""

from repro.analysis.report import format_table
from repro.cluster.cluster import make_cluster
from repro.sim.experiment import (
    MANAGER_FACTORIES,
    compile_benchmarks,
    run_experiment,
)
from repro.sim.workload import WorkloadGenerator


def main() -> None:
    cluster = make_cluster()
    print(f"platform: {cluster}")
    print("compiling the 21 Table 2 accelerators once (ViTAL needs no "
          "per-placement or per-combination recompilation)...")
    apps = compile_benchmarks(cluster)

    requests = WorkloadGenerator(seed=7).generate(
        set_index=7, num_requests=80, mean_interarrival_s=4.0)
    print(f"workload: {len(requests)} requests over "
          f"{requests[-1].arrival_s:.0f} s "
          "(33% S / 33% M / 34% L)\n")

    rows = []
    for name, factory in MANAGER_FACTORIES.items():
        result = run_experiment(factory(cluster), requests, apps)
        s = result.summary
        rows.append([
            name,
            f"{s.mean_response_s:.1f}",
            f"{s.mean_wait_s:.1f}",
            f"{s.mean_concurrency:.1f}",
            f"{s.block_utilization:.0%}",
            f"{s.multi_fpga_fraction:.0%}",
        ])
    print(format_table(
        ["manager", "response (s)", "wait (s)", "concurrency",
         "block util", "multi-FPGA"],
        rows,
        title="one workload-set replay (lower response is better):"))

    base = float(rows[0][1])
    vital = float(rows[-1][1])
    print(f"\nViTAL cuts mean response time by {1 - vital / base:.0%} "
          "versus per-device allocation on this set.")


if __name__ == "__main__":
    main()
