"""A day at the console: operating a ViTAL cluster.

The other examples are tenant-facing; this one is the operator's view --
the Fig. 6 system-controller APIs plus the extensions an accountable
multi-tenant service needs: tenant quotas, the structured audit log,
live occupancy rendering, defragmentation via runtime relocation, and a
warm controller restart over hardware that kept running.

Run:  python examples/operator_day.py
"""

from repro.analysis.occupancy import occupancy_timeline, \
    render_occupancy
from repro.cluster.cluster import make_cluster
from repro.compiler.flow import CompilationFlow
from repro.hls.kernels import benchmark
from repro.runtime.bitstream_db import BitstreamDB
from repro.runtime.controller import SystemController
from repro.runtime.defrag import DefragmentingController
from repro.runtime.isolation import verify_isolation


def main() -> None:
    cluster = make_cluster()
    flow = CompilationFlow(fabric=cluster.partition)
    db = BitstreamDB(cluster.footprint)
    apps = {}
    for family, size in [("mlp-mnist", "S"), ("alexnet", "M"),
                         ("svhn", "L")]:
        app = flow.compile(benchmark(family, size))
        db.register(app)
        apps[size] = app
    controller = DefragmentingController(cluster)

    # -- quotas: the free tier gets at most 6 blocks -------------------
    controller.set_quota("free-tier", 6)
    print("quota: free-tier capped at 6 blocks")
    d = controller.try_deploy(apps["S"], 0, 1.0, tenant="free-tier")
    rejected = controller.try_deploy(apps["L"], 1, 2.0,
                                     tenant="free-tier")
    print(f"  small app admitted: {d is not None}; "
          f"large app rejected: {rejected is None}")

    # -- load the cluster, watch occupancy -----------------------------
    live = [d]
    rid = 10
    for _ in range(9):
        dep = controller.try_deploy(apps["M"], rid, float(rid))
        if dep is not None:
            live.append(dep)
        rid += 1
    print("\ncurrent occupancy ('.' free, letters = deployments):")
    print(render_occupancy(controller))

    # -- fragment, then deploy a large app: defrag migrates ------------
    for dep in live[1:4]:
        controller.release(dep, 30.0)
        live.remove(dep)
    big = controller.try_deploy(apps["L"], 99, 31.0)
    print(f"\nlarge app after fragmentation: boards "
          f"{big.placement.boards} "
          f"(migrations performed: {controller.migrations_performed})")
    verify_isolation(controller)

    # -- the audit log answers 'what happened?' ------------------------
    print(f"\naudit log: {len(controller.audit)} entries, "
          f"{controller.audit.counts()}")
    print("last three entries:")
    for entry in controller.audit.entries()[-3:]:
        print(f"  {entry.to_json()}")

    # -- warm restart: new controller, same silicon --------------------
    snapshot = controller.snapshot()
    restored = SystemController.restore(cluster, snapshot, db)
    print(f"\nrestarted controller sees {len(restored.running())} "
          f"running deployments, "
          f"{restored.busy_blocks()}/{restored.capacity_blocks()} "
          "blocks busy")
    verify_isolation(restored)

    print("\noccupancy timeline (from the audit log):")
    print(occupancy_timeline(controller.audit, cluster,
                             max_snapshots=3))


if __name__ == "__main__":
    main()
