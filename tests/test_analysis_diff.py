"""Trace/metrics differ: the semantic regression gate behind
``python -m repro diff``."""

import json

import pytest

from repro.analysis.diff import (diff_metrics, diff_profiles,
                                 diff_traces, find_regressions,
                                 format_diff, load_diff_input,
                                 trace_profile)


def span(name, t, duration_s):
    return {"kind": "span", "name": name, "t": t,
            "duration_s": duration_s}


def event(name, t, **fields):
    entry = {"kind": "event", "name": name, "t": t}
    if fields:
        entry["fields"] = fields
    return entry


BASE_EVENTS = [
    span("compile.pnr", 0.0, 2.0),
    span("compile.pnr", 1.0, 4.0),
    event("ctrl.deploy", 1.0, request=1),
    event("ctrl.reject", 2.0, request=2, reason="no_capacity"),
    event("slo.violation", 10.0, rule="failed_boards < 1"),
    event("slo.recovered", 30.0, rule="failed_boards < 1"),
]


class TestTraceProfile:
    def test_folds_spans_decisions_and_slo(self):
        profile = trace_profile(BASE_EVENTS)
        assert profile["entries"] == len(BASE_EVENTS)
        assert profile["spans"]["compile.pnr"]["count"] == 2
        assert profile["spans"]["compile.pnr"]["p95_s"] == 4.0
        assert profile["decisions"]["deploys"] == 1
        assert profile["decisions"]["rejects"] == {"no_capacity": 1}
        assert profile["slo"] == {
            "violations": {"failed_boards < 1": 1},
            "recovered": {"failed_boards < 1": 1}}

    def test_profile_is_jsonable(self):
        json.dumps(trace_profile(BASE_EVENTS), sort_keys=True)


class TestDiffProfiles:
    def test_identical_traces_zero_deltas(self):
        diff = diff_traces(BASE_EVENTS, list(BASE_EVENTS))
        assert diff["identical"]
        assert find_regressions(diff) == []
        assert "identical" in format_diff(diff, [])

    def test_new_and_missing_types(self):
        cand = [e for e in BASE_EVENTS if e["name"] != "ctrl.reject"]
        cand.append(event("ctrl.evict", 5.0, request=1,
                          reason="preempted"))
        diff = diff_traces(BASE_EVENTS, cand)
        assert diff["new_names"] == ["ctrl.evict"]
        assert diff["missing_names"] == ["ctrl.reject"]
        regressions = find_regressions(diff)
        assert any("disappeared: ctrl.reject" in r for r in regressions)

    def test_new_reject_reason_is_a_regression(self):
        cand = BASE_EVENTS + [
            event("ctrl.reject", 3.0, request=9, reason="fragmented")]
        regressions = find_regressions(diff_traces(BASE_EVENTS, cand))
        assert any("new reject reason: fragmented" in r
                   for r in regressions)
        # more of an existing reason is a delta but not a regression
        cand2 = BASE_EVENTS + [
            event("ctrl.reject", 3.0, request=9, reason="no_capacity")]
        diff2 = diff_traces(BASE_EVENTS, cand2)
        assert diff2["reject_deltas"]["no_capacity"]["delta"] == 1
        assert find_regressions(diff2) == []

    def test_span_p95_shift_respects_tolerance(self):
        cand = [span("compile.pnr", 0.0, 2.0),
                span("compile.pnr", 1.0, 4.3)] + BASE_EVENTS[2:]
        diff = diff_traces(BASE_EVENTS, cand)
        assert diff["span_shifts"]["compile.pnr"]["ratio"] == \
            pytest.approx(4.3 / 4.0)
        assert find_regressions(diff, p95_tolerance=0.10) == []
        (regression,) = find_regressions(diff, p95_tolerance=0.05)
        assert "span p95 regression: compile.pnr" in regression

    def test_faster_span_is_not_a_regression(self):
        cand = [span("compile.pnr", 0.0, 1.0),
                span("compile.pnr", 1.0, 2.0)] + BASE_EVENTS[2:]
        diff = diff_traces(BASE_EVENTS, cand)
        assert diff["span_shifts"]  # the delta is reported...
        assert find_regressions(diff) == []  # ...but not flagged

    def test_more_slo_violations_regress(self):
        cand = BASE_EVENTS + [
            event("slo.violation", 50.0, rule="failed_boards < 1")]
        diff = diff_traces(BASE_EVENTS, cand)
        assert diff["slo_deltas"]["failed_boards < 1"]["delta"] == 1
        (regression,) = find_regressions(diff)
        assert "more SLO violations" in regression

    def test_permanent_failures_regress(self):
        cand = BASE_EVENTS + [
            event("sim.permanent_failure", 9.0, request=4)]
        regressions = find_regressions(diff_traces(BASE_EVENTS, cand))
        assert any("permanent failures increased" in r
                   for r in regressions)

    def test_format_diff_lists_regressions(self):
        cand = BASE_EVENTS + [
            event("ctrl.reject", 3.0, request=9, reason="fragmented")]
        diff = diff_traces(BASE_EVENTS, cand)
        regressions = find_regressions(diff)
        text = format_diff(diff, regressions)
        assert "semantic deltas" in text
        assert "1 regression(s):" in text
        assert "fragmented" in text


class TestDiffMetrics:
    BASE = {
        "deployments_total": [
            {"kind": "counter", "labels": {"manager": "vital"},
             "value": 10.0}],
        "response_s": [
            {"kind": "histogram", "labels": {},
             "value": {"sum": 50.0, "count": 10,
                       "buckets": {"1.0": 3}}}],
    }

    def test_identical(self):
        diff = diff_metrics(self.BASE, json.loads(json.dumps(self.BASE)))
        assert diff["identical"]

    def test_changed_series(self):
        cand = json.loads(json.dumps(self.BASE))
        cand["deployments_total"][0]["value"] = 12.0
        diff = diff_metrics(self.BASE, cand)
        key = "deployments_total{manager=vital}"
        assert diff["changed"][key]["delta"] == 2.0
        assert not diff["identical"]

    def test_histograms_compare_sum_and_count_only(self):
        cand = json.loads(json.dumps(self.BASE))
        cand["response_s"][0]["value"]["buckets"] = {"1.0": 4}
        assert diff_metrics(self.BASE, cand)["identical"]
        cand["response_s"][0]["value"]["sum"] = 60.0
        diff = diff_metrics(self.BASE, cand)
        assert "response_s/sum" in diff["changed"]

    def test_added_and_removed_series(self):
        cand = {"other_total": [
            {"kind": "counter", "labels": {}, "value": 1.0}]}
        diff = diff_metrics(self.BASE, cand)
        assert diff["added"] == ["other_total"]
        assert set(diff["removed"]) == {
            "deployments_total{manager=vital}", "response_s/count",
            "response_s/sum"}
        assert not diff["identical"]


class TestLoadDiffInput:
    def test_detects_jsonl_trace(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("\n".join(
            json.dumps(e, sort_keys=True) for e in BASE_EVENTS) + "\n")
        kind, events = load_diff_input(path)
        assert kind == "trace"
        assert len(events) == len(BASE_EVENTS)

    def test_detects_profile_document(self, tmp_path):
        path = tmp_path / "profile.json"
        path.write_text(json.dumps(trace_profile(BASE_EVENTS)))
        kind, doc = load_diff_input(path)
        assert kind == "profile"
        assert doc["entries"] == len(BASE_EVENTS)

    def test_detects_metrics_dump(self, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(TestDiffMetrics.BASE))
        kind, doc = load_diff_input(path)
        assert kind == "metrics"
        assert "deployments_total" in doc

    def test_single_line_trace_is_not_a_profile(self, tmp_path):
        path = tmp_path / "tiny.jsonl"
        path.write_text(json.dumps(
            {"seq": 0, "kind": "event", "name": "sim.arrival",
             "t": 0.0}) + "\n")
        kind, events = load_diff_input(path)
        assert kind == "trace"
        assert events[0]["name"] == "sim.arrival"
