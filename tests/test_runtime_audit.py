"""Tests for the audit log and its controller integration."""

import json

import pytest

from repro.runtime.audit import AuditEvent, AuditLog
from repro.runtime.controller import SystemController
from repro.runtime.defrag import DefragmentingController


class TestAuditLog:
    def test_sequence_and_order(self):
        log = AuditLog()
        a = log.record(1.0, AuditEvent.DEPLOY, 1, "t1")
        b = log.record(2.0, AuditEvent.RELEASE, 1, "t1")
        assert (a.sequence, b.sequence) == (0, 1)
        assert len(log) == 2

    def test_strict_rejects_time_travel(self):
        log = AuditLog(strict=True)
        log.record(5.0, AuditEvent.DEPLOY, 1, "t1")
        with pytest.raises(ValueError, match="backwards"):
            log.record(4.0, AuditEvent.RELEASE, 1, "t1")

    def test_lenient_clamps_and_annotates(self):
        log = AuditLog()
        log.record(5.0, AuditEvent.DEPLOY, 1, "t1")
        entry = log.record(4.0, AuditEvent.RELEASE, 1, "t1")
        assert entry.time_s == 5.0
        assert entry.detail["reported_t"] == 4.0

    def test_queries(self):
        log = AuditLog()
        log.record(1.0, AuditEvent.DEPLOY, 1, "alice")
        log.record(2.0, AuditEvent.DEPLOY, 2, "bob")
        log.record(3.0, AuditEvent.RELEASE, 1, "alice")
        assert len(log.by_tenant("alice")) == 2
        assert len(log.by_request(2)) == 1
        assert len(log.window(1.5, 2.5)) == 1
        assert log.counts()[AuditEvent.DEPLOY] == 2

    def test_live_requests_rederivation(self):
        log = AuditLog()
        log.record(1.0, AuditEvent.DEPLOY, 1, "a")
        log.record(2.0, AuditEvent.DEPLOY, 2, "b")
        log.record(3.0, AuditEvent.RELEASE, 1, "a")
        assert log.live_requests() == {2}

    def test_jsonl_roundtrips(self):
        log = AuditLog()
        log.record(1.0, AuditEvent.DEPLOY, 7, "t", app="x")
        lines = log.to_jsonl().splitlines()
        parsed = json.loads(lines[0])
        assert parsed["event"] == "deploy"
        assert parsed["detail"]["app"] == "x"


class TestControllerIntegration:
    def test_deploy_release_recorded(self, cluster, compiled_small):
        controller = SystemController(cluster)
        d = controller.try_deploy(compiled_small, 1, 1.0)
        controller.release(d, 9.0)
        events = [e.event for e in controller.audit.entries()]
        assert events == [AuditEvent.DEPLOY, AuditEvent.RELEASE]
        deploy = controller.audit.entries()[0]
        assert deploy.detail["app"] == compiled_small.name
        assert deploy.detail["blocks"] == compiled_small.num_blocks

    def test_rejection_recorded_with_reason(self, cluster,
                                            compiled_large):
        controller = SystemController(cluster)
        rid = 0
        while controller.try_deploy(compiled_large, rid, 0.0):
            rid += 1
        rejected = controller.audit.by_request(rid)
        assert rejected[-1].event is AuditEvent.REJECT
        assert rejected[-1].detail["reason"] == "no-free-blocks"

    def test_log_agrees_with_live_state(self, cluster, compiled_small,
                                        compiled_medium):
        controller = SystemController(cluster)
        live = []
        for rid in range(8):
            d = controller.try_deploy(
                compiled_small if rid % 2 else compiled_medium,
                rid, float(rid))
            if d is not None:
                live.append(d)
        controller.release(live.pop(0), 100.0)
        assert controller.audit.live_requests() \
            == set(controller.deployments)

    def test_migration_recorded(self, cluster, compiled_medium,
                                compiled_large):
        controller = DefragmentingController(cluster)
        live = []
        rid = 0
        while (d := controller.try_deploy(compiled_medium, rid, 0.0)) \
                is not None:
            live.append(d)
            rid += 1
        freed = {}
        for d in sorted(live, key=lambda d: d.request_id):
            b = d.placement.boards[0]
            if freed.get(b, 0) < compiled_large.num_blocks - 2:
                controller.release(d, 1.0)
                freed[b] = freed.get(b, 0) + d.num_blocks
        controller.try_deploy(compiled_large, 900, 2.0)
        if controller.migrations_performed:
            migrations = [e for e in controller.audit.entries()
                          if e.event is AuditEvent.MIGRATE]
            assert len(migrations) == controller.migrations_performed
            assert all(e.detail["pause_s"] > 0 for e in migrations)
