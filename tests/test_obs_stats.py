"""Shared observability math: percentiles + fragmentation index."""

import math

import pytest

from repro.obs.metrics import Histogram
from repro.obs.stats import (fragmentation_index, percentile,
                             quantile_from_cumulative)


class TestPercentile:
    def test_empty_sample_is_zero(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([], 0.0) == 0.0
        assert percentile([], 1.0) == 0.0

    def test_single_sample_is_every_percentile(self):
        for q in (0.0, 0.5, 0.95, 1.0):
            assert percentile([7.5], q) == 7.5

    def test_q0_is_min_q1_is_max(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 5.0

    def test_nearest_rank_convention(self):
        # the exact indices the span viewer and summary always used:
        # int(q * n), clamped
        values = list(range(100))
        assert percentile(values, 0.50) == 50
        assert percentile(values, 0.95) == 95

    def test_median_matches_legacy_summary_convention(self):
        # summarize() used responses[len // 2]
        for n in (1, 2, 3, 10, 11):
            values = [float(i) for i in range(n)]
            assert percentile(values, 0.5) == values[n // 2]

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)
        with pytest.raises(ValueError):
            percentile([1.0], 1.1)


class TestQuantileFromCumulative:
    def test_empty_total_is_zero(self):
        assert quantile_from_cumulative([], 0, 0.5) == 0.0

    def test_picks_first_reaching_bound(self):
        pairs = [(1.0, 2), (2.0, 5), (4.0, 10)]
        assert quantile_from_cumulative(pairs, 10, 0.2) == 1.0
        assert quantile_from_cumulative(pairs, 10, 0.5) == 2.0
        assert quantile_from_cumulative(pairs, 10, 0.9) == 4.0

    def test_overflow_bucket_is_inf(self):
        pairs = [(1.0, 2)]
        assert quantile_from_cumulative(pairs, 10, 0.9) == math.inf

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError):
            quantile_from_cumulative([(1.0, 1)], 1, 2.0)

    def test_histogram_quantile_unchanged(self):
        # Histogram.quantile now routes through the shared helper; the
        # observable behaviour must be what it always was
        h = Histogram(buckets=(1.0, 5.0, 10.0))
        assert h.quantile(0.5) == 0.0  # empty
        for v in (0.5, 0.7, 3.0, 3.5, 20.0):
            h.observe(v)
        assert h.quantile(0.0) == 1.0
        assert h.quantile(0.4) == 1.0
        assert h.quantile(0.8) == 5.0
        assert h.quantile(1.0) == math.inf
        with pytest.raises(ValueError):
            h.quantile(-1.0)


class TestFragmentationIndex:
    def test_no_free_blocks_is_not_fragmentation(self):
        assert fragmentation_index({}) == 0.0
        assert fragmentation_index({0: 0, 1: 0}) == 0.0
        assert fragmentation_index([]) == 0.0

    def test_all_on_one_board_is_zero(self):
        assert fragmentation_index({0: 15, 1: 0, 2: 0}) == 0.0

    def test_even_shred_approaches_one_minus_inverse_n(self):
        assert fragmentation_index([5, 5, 5, 5]) == pytest.approx(0.75)

    def test_accepts_free_block_lists(self):
        # the shape of ResourceDB.free_by_board()
        assert fragmentation_index(
            {0: [0, 1, 2], 1: [4]}) == pytest.approx(0.25)

    def test_matches_live_controller_free_counts(self, cluster,
                                                 compiled_medium):
        from repro.analysis.occupancy import cluster_fragmentation
        from repro.runtime.controller import SystemController
        controller = SystemController(cluster)
        assert cluster_fragmentation(controller) == pytest.approx(0.75)
        controller.try_deploy(compiled_medium, 1, now=0.0)
        frag = cluster_fragmentation(controller)
        assert frag == fragmentation_index(
            controller.resource_db.free_counts_by_board())

    def test_free_counts_exclude_failed_boards(self, cluster,
                                               compiled_small):
        from repro.runtime.controller import SystemController
        controller = SystemController(cluster)
        controller.fail_board(1)
        counts = controller.resource_db.free_counts_by_board()
        assert 1 not in counts
        assert set(counts) == {0, 2, 3}
        controller.repair_board(1)
        assert 1 in controller.resource_db.free_counts_by_board()


class TestLiveFragmentationGauge:
    def test_gauge_tracks_allocate_release_fail_repair(
            self, cluster, compiled_medium):
        from repro.obs.metrics import MetricsRegistry
        from repro.runtime.controller import SystemController
        registry = MetricsRegistry()
        controller = SystemController(cluster)
        controller.attach_metrics(registry)
        gauge = registry.gauge("fragmentation_index", manager="vital")
        assert gauge.value == pytest.approx(0.75)
        deployment = controller.try_deploy(compiled_medium, 1, now=0.0)
        assert deployment is not None
        expected = fragmentation_index(
            controller.resource_db.free_counts_by_board())
        assert gauge.value == pytest.approx(expected)
        controller.fail_board(3)
        assert gauge.value == pytest.approx(fragmentation_index(
            controller.resource_db.free_counts_by_board()))
        controller.repair_board(3)
        controller.release(deployment)
        assert gauge.value == pytest.approx(0.75)

    def test_without_registry_no_gauge_work(self, cluster,
                                            compiled_small):
        from repro.runtime.controller import SystemController
        controller = SystemController(cluster)
        assert controller._frag_gauge is None
        d = controller.try_deploy(compiled_small, 1, now=0.0)
        controller.release(d)
