"""Unit tests for the metrics registry and its export formats."""

import json
import math

import pytest

from repro.obs import (DEFAULT_TIME_BUCKETS, Counter, Gauge, Histogram,
                       MetricsRegistry)


class TestInstruments:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.snapshot() == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter().inc(-1)

    def test_gauge(self):
        g = Gauge()
        g.set(5)
        g.inc(2)
        g.dec(3)
        assert g.snapshot() == 4.0

    def test_histogram_buckets(self):
        h = Histogram(buckets=(1.0, 10.0))
        for v in (0.5, 0.7, 5.0, 100.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(106.2)
        # cumulative: <=1 has 2, <=10 has 3, +Inf has all 4
        assert [b["count"] for b in snap["buckets"]] == [2, 3, 4]
        assert snap["buckets"][-1]["le"] == math.inf

    def test_histogram_requires_increasing_buckets(self):
        with pytest.raises(ValueError, match="increasing"):
            Histogram(buckets=(10.0, 1.0))
        with pytest.raises(ValueError, match="at least one"):
            Histogram(buckets=())

    def test_histogram_quantile(self):
        h = Histogram(buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.6, 3.0):
            h.observe(v)
        assert h.quantile(0.0) == 1.0  # empty target hits first bucket
        assert h.quantile(0.5) == 2.0
        assert h.quantile(1.0) == 4.0
        assert Histogram().quantile(0.5) == 0.0

    def test_histogram_quantile_overflow_is_inf(self):
        h = Histogram(buckets=(1.0,))
        h.observe(50.0)
        assert h.quantile(1.0) == math.inf


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("deploys_total", manager="vital")
        b = reg.counter("deploys_total", manager="vital")
        assert a is b
        assert len(reg) == 1

    def test_labels_distinguish_instruments(self):
        reg = MetricsRegistry()
        reg.counter("deploys_total", manager="vital").inc()
        reg.counter("deploys_total", manager="per-device").inc(3)
        assert len(reg) == 2
        values = {row["labels"]["manager"]: row["value"]
                  for row in reg.as_dict()["deploys_total"]}
        assert values == {"vital": 1.0, "per-device": 3.0}

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_custom_histogram_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1.0, 2.0))
        assert h.buckets == (1.0, 2.0)
        assert reg.histogram("default").buckets == DEFAULT_TIME_BUCKETS


class TestExport:
    def test_as_json_round_trips(self):
        reg = MetricsRegistry()
        reg.gauge("util", "busy fraction", manager="vital").set(0.93)
        reg.histogram("lat", buckets=(1.0,)).observe(0.5)
        parsed = json.loads(reg.as_json())
        assert parsed["util"][0]["value"] == 0.93
        # inf bucket bound serialized as a string marker
        assert parsed["lat"][0]["value"]["buckets"][-1]["le"] == "+Inf"

    def test_prometheus_text_format(self):
        reg = MetricsRegistry()
        reg.counter("deploys_total", "successful deployments",
                    manager="vital").inc(4)
        reg.gauge("util").set(0.5)
        text = reg.to_prometheus()
        assert "# HELP deploys_total successful deployments" in text
        assert "# TYPE deploys_total counter" in text
        assert 'deploys_total{manager="vital"} 4' in text
        assert "# TYPE util gauge" in text
        assert "util 0.5" in text
        assert text.endswith("\n")

    def test_prometheus_histogram_series(self):
        reg = MetricsRegistry()
        h = reg.histogram("wait_seconds", "wait", buckets=(1.0, 5.0),
                          manager="vital")
        for v in (0.5, 3.0, 9.0):
            h.observe(v)
        text = reg.to_prometheus()
        assert '# TYPE wait_seconds histogram' in text
        assert 'wait_seconds_bucket{manager="vital",le="1"} 1' in text
        assert 'wait_seconds_bucket{manager="vital",le="5"} 2' in text
        assert 'wait_seconds_bucket{manager="vital",le="+Inf"} 3' \
            in text
        assert 'wait_seconds_sum{manager="vital"} 12.5' in text
        assert 'wait_seconds_count{manager="vital"} 3' in text

    def test_prometheus_header_emitted_once_across_labels(self):
        reg = MetricsRegistry()
        reg.counter("c", "help text", manager="a").inc()
        reg.counter("c", "help text", manager="b").inc()
        text = reg.to_prometheus()
        assert text.count("# TYPE c counter") == 1

    def test_empty_registry_exports_empty(self):
        reg = MetricsRegistry()
        assert reg.as_dict() == {}
        assert reg.to_prometheus() == ""
