"""The content-addressed compile cache: fingerprinting and storage.

Two families of property here:

1. **Fingerprint keying** -- anything the artifact is a function of
   (spec, abstraction geometry, flow config, flow version) changes the
   fingerprint; anything it is not (cluster size, tracer, lookup order)
   does not.
2. **Cache mechanics** -- LRU bound, disk tier round-trip through the
   canonical JSON form, counters, invalidation, and the ``cache.hit`` /
   ``cache.miss`` trace events.
"""

from __future__ import annotations

import json

import pytest

from repro.compiler.bitstream import CompiledApp
from repro.compiler.cache import (CompileCache, compile_fingerprint,
                                  fingerprint_for_flow)
from repro.compiler.flow import FLOW_VERSION, CompilationFlow
from repro.fabric.devices import device_by_name
from repro.fabric.partition import PartitionPlanner
from repro.hls.kernels import all_benchmarks, benchmark
from repro.obs.tracer import Tracer


class TestFingerprint:
    def test_deterministic(self, partition):
        spec = benchmark("mlp-mnist", "S")
        assert compile_fingerprint(spec, partition) \
            == compile_fingerprint(spec, partition)

    def test_distinct_specs_distinct_fingerprints(self, partition):
        fps = {compile_fingerprint(spec, partition)
               for spec in all_benchmarks()}
        assert len(fps) == len(all_benchmarks())

    @pytest.mark.parametrize("change", [
        {"seed": 1},
        {"shell_clock_mhz": 300.0},
        {"detailed_pnr": True},
        {"flow_version": "vital-flow-0-test"},
    ])
    def test_flow_config_invalidates(self, partition, change):
        spec = benchmark("cifar10", "M")
        assert compile_fingerprint(spec, partition) \
            != compile_fingerprint(spec, partition, **change)

    def test_footprint_invalidates(self, partition):
        """A different device geometry is a different abstraction."""
        other = PartitionPlanner(device_by_name("VU13P")).plan()
        assert other.blocks[0].footprint \
            != partition.blocks[0].footprint
        spec = benchmark("svhn", "L")
        assert compile_fingerprint(spec, partition) \
            != compile_fingerprint(spec, other)

    def test_cluster_size_is_irrelevant(self, partition, cluster):
        """The paper's decoupling: one artifact serves any board count.

        The fingerprint sees only the partition geometry, which every
        board of every cluster size shares.
        """
        spec = benchmark("lenet5", "S")
        assert compile_fingerprint(spec, partition) \
            == compile_fingerprint(spec, cluster.partition)

    def test_spec_identity_not_object_identity(self, partition):
        """An equal spec built independently fingerprints the same."""
        import dataclasses
        a = benchmark("alexnet", "M")
        b = dataclasses.replace(a)
        assert a is not b
        assert compile_fingerprint(a, partition) \
            == compile_fingerprint(b, partition)

    def test_matches_flow_configuration(self, partition):
        spec = benchmark("vgg16", "S")
        flow = CompilationFlow(fabric=partition, seed=3,
                               shell_clock_mhz=275.0)
        assert fingerprint_for_flow(spec, flow) == compile_fingerprint(
            spec, partition, seed=3, shell_clock_mhz=275.0)

    def test_default_version_is_current(self, partition):
        spec = benchmark("resnet18", "S")
        assert compile_fingerprint(spec, partition) \
            == compile_fingerprint(spec, partition,
                                   flow_version=FLOW_VERSION)


class TestCompileCache:
    def test_miss_then_hit(self, partition, compiled_small):
        cache = CompileCache()
        fp = compile_fingerprint(compiled_small.spec, partition)
        assert cache.get(fp) is None
        cache.put(fp, compiled_small)
        assert cache.get(fp) is compiled_small
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1
        assert cache.stats()["stores"] == 1

    def test_lru_eviction(self, compiled_small, compiled_medium,
                          compiled_large):
        cache = CompileCache(max_entries=2)
        cache.put("a", compiled_small)
        cache.put("b", compiled_medium)
        cache.get("a")  # refresh recency: "b" is now the LRU entry
        cache.put("c", compiled_large)
        assert cache.get("a") is compiled_small
        assert cache.get("b") is None
        assert cache.get("c") is compiled_large
        assert cache.stats()["evictions"] == 1
        assert len(cache) == 2

    def test_disk_tier_round_trip(self, tmp_path, partition,
                                  compiled_medium):
        fp = compile_fingerprint(compiled_medium.spec, partition)
        warm = CompileCache(cache_dir=tmp_path)
        warm.put(fp, compiled_medium)
        assert (tmp_path / f"{fp}.json").exists()
        # a fresh process (new cache over the same directory) reloads
        # the artifact byte-identically through the canonical form
        cold = CompileCache(cache_dir=tmp_path)
        reloaded = cold.get(fp)
        assert reloaded is not None
        assert reloaded.to_json() == compiled_medium.to_json()
        assert cold.stats()["disk_hits"] == 1
        # promoted into memory: the second lookup skips the disk
        assert cold.get(fp) is reloaded
        assert cold.stats()["disk_hits"] == 1
        assert cold.stats()["hits"] == 2

    def test_disk_file_is_byte_stable(self, tmp_path, partition,
                                      compiled_small):
        fp = compile_fingerprint(compiled_small.spec, partition)
        cache = CompileCache(cache_dir=tmp_path)
        cache.put(fp, compiled_small)
        text = (tmp_path / f"{fp}.json").read_text()
        assert text == compiled_small.to_json()
        # canonical form: compact separators, sorted keys, no wall
        # clocks
        assert json.dumps(json.loads(text), sort_keys=True,
                          separators=(",", ":")) == text
        assert "measured" not in text

    def test_invalidate(self, tmp_path, compiled_small):
        cache = CompileCache(cache_dir=tmp_path)
        cache.put("x", compiled_small)
        assert "x" in cache
        assert cache.invalidate("x")
        assert "x" not in cache
        assert cache.get("x") is None
        assert not cache.invalidate("x")
        assert cache.stats()["invalidations"] == 1

    def test_trace_events(self, compiled_small):
        tracer = Tracer()
        cache = CompileCache(tracer=tracer)
        cache.get("f" * 64, app_name="mlp-mnist-S")
        cache.put("f" * 64, compiled_small)
        cache.get("f" * 64, app_name="mlp-mnist-S")
        names = [e["name"] for e in tracer.entries()]
        assert names == ["cache.miss", "cache.hit"]
        hit = list(tracer.entries())[1]
        assert hit["fields"]["app"] == "mlp-mnist-S"
        assert hit["fields"]["tier"] == "memory"
        assert hit["fields"]["fingerprint"] == "f" * 12

    def test_rejects_degenerate_bound(self):
        with pytest.raises(ValueError, match="max_entries"):
            CompileCache(max_entries=0)


class TestCanonicalSerialization:
    def test_round_trip_identity(self, compiled_large):
        clone = CompiledApp.from_dict(compiled_large.to_dict())
        assert clone.to_json() == compiled_large.to_json()
        assert clone.name == compiled_large.name
        assert clone.num_blocks == compiled_large.num_blocks
        assert clone.fmax_mhz == compiled_large.fmax_mhz
        assert clone.flows == compiled_large.flows

    def test_excludes_wall_clocks(self, compiled_small):
        d = compiled_small.to_dict()
        assert "measured_custom_s" not in d["breakdown"]
        assert "measured_wall_s" not in d["breakdown"]
        # ...so a recompile of the same inputs serializes identically
        # even though its wall clocks differ

    def test_from_dict_validates(self, compiled_small):
        data = compiled_small.to_dict()
        data["images"] = []
        with pytest.raises(ValueError, match="no images"):
            CompiledApp.from_dict(data)
