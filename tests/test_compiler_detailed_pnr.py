"""Tests for detailed intra-block place-and-route."""

import pytest

from repro.compiler.detailed_pnr import (
    BinGrid,
    detailed_place_and_route,
)
from repro.compiler.partitioner import NetlistPartitioner
from repro.compiler.pnr import LocalPnR
from repro.fabric.resources import ResourceVector
from repro.hls.frontend import synthesize
from repro.hls.kernels import benchmark


@pytest.fixture(scope="module")
def partitioned(partition):
    netlist = synthesize(benchmark("lenet5", "M"))
    result = NetlistPartitioner(
        partition.block_capacity).partition(netlist)
    return netlist, result


class TestBinGrid:
    def test_for_block_capacity_covers_fill_target(self, partition):
        grid = BinGrid.for_block(partition.block_capacity, cols=8,
                                 rows=6, fill_target=0.85)
        total = grid.bin_capacity * (8 * 6)
        # the grid can hold the whole block at 1/0.85 density
        assert partition.block_capacity.fits_in(total)

    def test_neighbors_interior_and_corner(self):
        grid = BinGrid(cols=4, rows=3,
                       bin_capacity=ResourceVector(lut=10))
        assert len(grid.neighbors(5)) == 4
        assert len(grid.neighbors(0)) == 2

    def test_position_index_roundtrip(self):
        grid = BinGrid(cols=5, rows=4,
                       bin_capacity=ResourceVector(lut=10))
        for b in range(grid.num_bins):
            assert grid.index(*grid.position(b)) == b

    def test_invalid_grid(self):
        with pytest.raises(ValueError):
            BinGrid(cols=0, rows=1,
                    bin_capacity=ResourceVector(lut=1))


class TestDetailedPnR:
    def test_every_macro_placed_in_grid(self, partitioned, partition):
        netlist, result = partitioned
        out = detailed_place_and_route(netlist, result, 0,
                                       partition.block_capacity)
        members = [u for u, vb in result.assignment.items()
                   if vb == 0 and not netlist.primitives[u].is_io()]
        assert set(out.placement) == set(members)
        grid = BinGrid.for_block(partition.block_capacity)
        assert all(0 <= b < grid.num_bins
                   for b in out.placement.values())

    def test_no_bin_overflow(self, partitioned, partition):
        netlist, result = partitioned
        out = detailed_place_and_route(netlist, result, 0,
                                       partition.block_capacity)
        assert out.overflow_bins == 0

    def test_router_converges(self, partitioned, partition):
        netlist, result = partitioned
        out = detailed_place_and_route(netlist, result, 0,
                                       partition.block_capacity)
        assert out.routed
        assert out.router_iterations >= 1

    def test_meets_shell_clock(self, partitioned, partition):
        netlist, result = partitioned
        out = detailed_place_and_route(netlist, result, 0,
                                       partition.block_capacity)
        assert out.fmax_mhz >= 250.0

    def test_agrees_with_analytic_model(self, partitioned, partition):
        """The calibrated LocalPnR fmax and the detailed fmax agree to
        within a factor ~2 -- same ballpark, as intended (they are
        independent models: utilization proxy vs placed wirelength)."""
        netlist, result = partitioned
        detailed = detailed_place_and_route(netlist, result, 0,
                                            partition.block_capacity)
        util = result.block_usage[0].utilization_of(
            partition.block_capacity)
        analytic = LocalPnR._fmax(util)
        ratio = detailed.fmax_mhz / analytic
        assert 0.5 < ratio < 2.0

    def test_sa_improves_or_matches_greedy(self, partitioned,
                                           partition):
        netlist, result = partitioned
        greedy = detailed_place_and_route(
            netlist, result, 0, partition.block_capacity, sa_moves=0)
        annealed = detailed_place_and_route(
            netlist, result, 0, partition.block_capacity,
            sa_moves=4000)
        assert annealed.hpwl <= greedy.hpwl * 1.001

    def test_deterministic_per_seed(self, partitioned, partition):
        netlist, result = partitioned
        a = detailed_place_and_route(netlist, result, 0,
                                     partition.block_capacity, seed=4)
        b = detailed_place_and_route(netlist, result, 0,
                                     partition.block_capacity, seed=4)
        assert a.placement == b.placement
        assert a.hpwl == b.hpwl

    def test_empty_block_rejected(self, partitioned, partition):
        netlist, result = partitioned
        with pytest.raises(ValueError, match="no logic"):
            detailed_place_and_route(netlist, result, 99,
                                     partition.block_capacity)

    def test_tight_channels_force_iterations(self, partitioned,
                                             partition):
        """With scarce routing, the negotiated router works harder (or
        honestly fails), never silently overuses."""
        netlist, result = partitioned
        grid = BinGrid.for_block(partition.block_capacity)
        tight = BinGrid(cols=grid.cols, rows=grid.rows,
                        bin_capacity=grid.bin_capacity,
                        channel_capacity=2)
        out = detailed_place_and_route(netlist, result, 0,
                                       partition.block_capacity,
                                       grid=tight)
        if out.routed:
            assert out.max_channel_use <= 2
        else:
            assert out.router_iterations >= 12
