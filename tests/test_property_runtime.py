"""Property-based tests over the runtime: policies, controller state
machines and experiment conservation laws."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster.network import RingNetwork
from repro.runtime.controller import SystemController
from repro.runtime.isolation import verify_isolation
from repro.runtime.policy import (
    CommunicationAwarePolicy,
    FirstFitPolicy,
    SpreadPolicy,
)
from repro.sim.experiment import run_experiment
from repro.sim.workload import Request


# free maps: 4 boards with 0..15 free blocks each
free_maps = st.lists(st.integers(min_value=0, max_value=15),
                     min_size=4, max_size=4).map(
    lambda counts: {b: list(range(c)) for b, c in enumerate(counts)})

policies = st.sampled_from([CommunicationAwarePolicy(),
                            FirstFitPolicy(), SpreadPolicy()])


class TestPolicyProperties:
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(free=free_maps, policy=policies)
    def test_placement_always_valid_or_none(self, free, policy,
                                            compiled_large):
        ring = RingNetwork(num_nodes=4)
        placement = policy.allocate(compiled_large, dict(free), ring)
        total_free = sum(len(v) for v in free.values())
        if placement is None:
            # refusal is only legal when capacity is genuinely short --
            # every policy here can span boards
            assert total_free < compiled_large.num_blocks
            return
        placement.validate(compiled_large.num_blocks)
        # uses only genuinely free blocks, each at most once
        for board, block in placement.addresses:
            assert block in free[board]

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(free=free_maps)
    def test_comm_aware_minimizes_boards(self, free, compiled_large):
        """If any single board fits the app, the multi-round policy
        never spans."""
        ring = RingNetwork(num_nodes=4)
        placement = CommunicationAwarePolicy().allocate(
            compiled_large, dict(free), ring)
        if placement is None:
            return
        fits_single = any(len(v) >= compiled_large.num_blocks
                          for v in free.values())
        if fits_single:
            assert not placement.spans_boards

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(free=free_maps)
    def test_comm_aware_never_beaten_on_span(self, free,
                                             compiled_large):
        """The communication-aware policy's board count never exceeds
        the spread policy's."""
        ring = RingNetwork(num_nodes=4)
        aware = CommunicationAwarePolicy().allocate(
            compiled_large, dict(free), ring)
        spread = SpreadPolicy().allocate(compiled_large, dict(free),
                                         ring)
        if aware is not None and spread is not None:
            assert aware.num_boards <= spread.num_boards


class TestControllerFuzz:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(ops=st.lists(st.tuples(st.sampled_from(["s", "m", "l"]),
                                  st.booleans()),
                        min_size=1, max_size=40))
    def test_random_deploy_release_preserves_invariants(
            self, ops, cluster, compiled_small, compiled_medium,
            compiled_large):
        apps = {"s": compiled_small, "m": compiled_medium,
                "l": compiled_large}
        controller = SystemController(cluster)
        live = []
        rid = 0
        for kind, release_one in ops:
            if release_one and live:
                controller.release(live.pop(0))
            else:
                d = controller.try_deploy(apps[kind], rid, 0.0)
                rid += 1
                if d is not None:
                    live.append(d)
            verify_isolation(controller)
            # accounting: busy == sum of live deployments' blocks
            assert controller.busy_blocks() \
                == sum(d.num_blocks for d in live)
        for d in live:
            controller.release(d)
        assert controller.busy_blocks() == 0
        for memory in controller.memories.values():
            assert memory.used_bytes() == 0
        for arbiter in controller.dram_arbiters.values():
            assert arbiter.total_demand() == 0


class TestExperimentConservation:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(arrivals=st.lists(
        st.floats(min_value=0.1, max_value=100, allow_nan=False),
        min_size=1, max_size=25))
    def test_every_request_completes_exactly_once(self, arrivals,
                                                  cluster,
                                                  compiled_apps,
                                                  compiled_medium):
        arrivals = sorted(arrivals)
        requests = [Request(request_id=i, spec=compiled_medium.spec,
                            arrival_s=t)
                    for i, t in enumerate(arrivals)]
        manager = SystemController(cluster)
        result = run_experiment(manager, requests, compiled_apps)
        assert result.summary.num_requests == len(requests)
        assert all(r.finished for r in result.records)
        # causality: deploy >= arrival, completion > deploy
        for r in result.records:
            assert r.deployed_s >= r.arrival_s - 1e-9
            assert r.completed_s > r.deployed_s
        # cluster drained
        assert manager.busy_blocks() == 0
