"""Tests for the column-based device model."""

import pytest

from repro.fabric.device import (
    ColumnSpec,
    ColumnType,
    Die,
    FPGADevice,
    TILE_YIELD,
    expand_pattern,
)
from repro.fabric.resources import ResourceVector


def small_die(index=0, rows=24, cr_rows=2):
    columns = expand_pattern([
        ColumnSpec(ColumnType.CLB, 8),
        ColumnSpec(ColumnType.DSP, 1),
        ColumnSpec(ColumnType.CLB, 8),
        ColumnSpec(ColumnType.BRAM, 1),
    ])
    return Die(index=index, columns=columns, tile_rows=rows,
               clock_region_rows=cr_rows)


class TestColumnSpec:
    def test_rejects_empty_run(self):
        with pytest.raises(ValueError):
            ColumnSpec(ColumnType.CLB, 0)

    def test_expand_pattern_order(self):
        cols = expand_pattern([ColumnSpec(ColumnType.CLB, 2),
                               ColumnSpec(ColumnType.DSP, 1)])
        assert cols == (ColumnType.CLB, ColumnType.CLB, ColumnType.DSP)


class TestDie:
    def test_rows_must_divide_clock_regions(self):
        with pytest.raises(ValueError):
            small_die(rows=25, cr_rows=2)

    def test_rows_per_clock_region(self):
        assert small_die(rows=24, cr_rows=2).rows_per_clock_region == 12

    def test_clock_regions_tile_the_die(self):
        die = small_die()
        regions = die.clock_regions()
        assert len(regions) == die.clock_region_rows
        assert regions[0].first_tile_row == 0
        assert regions[-1].last_tile_row == die.tile_rows - 1

    def test_column_indices(self):
        die = small_die()
        assert die.column_indices(ColumnType.DSP) == [8]
        assert die.column_indices(ColumnType.BRAM) == [17]

    def test_resources_of_slice_full_width(self):
        die = small_die()
        res = die.resources_of_slice(1)
        assert res.lut == 16 * TILE_YIELD[ColumnType.CLB].lut
        assert res.dsp == 1
        assert res.bram_mb == pytest.approx(
            TILE_YIELD[ColumnType.BRAM].bram_mb)

    def test_resources_of_slice_scales_with_rows(self):
        die = small_die()
        one = die.resources_of_slice(1)
        five = die.resources_of_slice(5)
        assert five.lut == pytest.approx(5 * one.lut)

    def test_resources_of_slice_column_subset(self):
        die = small_die()
        clb_only = die.resources_of_slice(
            2, columns=die.column_indices(ColumnType.CLB))
        assert clb_only.dsp == 0 and clb_only.bram_mb == 0
        assert clb_only.lut == 2 * 16 * 8

    def test_column_signature_subset(self):
        die = small_die()
        assert die.column_signature([8]) == (ColumnType.DSP,)

    def test_total_resources(self):
        die = small_die()
        total = die.total_resources()
        assert total.lut == 24 * 16 * 8
        assert total.dsp == 24


class TestFPGADevice:
    def test_capacity_sums_dies(self):
        dies = [small_die(0), small_die(1)]
        device = FPGADevice(name="toy", dies=dies)
        assert device.capacity.lut \
            == pytest.approx(2 * dies[0].total_resources().lut)

    def test_requires_dies(self):
        with pytest.raises(ValueError):
            FPGADevice(name="empty", dies=[])

    def test_requires_matching_column_grids(self):
        other = Die(index=1,
                    columns=(ColumnType.CLB,) * 3,
                    tile_rows=24, clock_region_rows=2)
        with pytest.raises(ValueError):
            FPGADevice(name="bad", dies=[small_die(0), other])

    def test_homogeneous_dies_true(self):
        device = FPGADevice(name="toy", dies=[small_die(0), small_die(1)])
        assert device.homogeneous_dies()

    def test_clock_regions_across_dies(self):
        device = FPGADevice(name="toy", dies=[small_die(0), small_die(1)])
        regions = device.clock_regions()
        assert len(regions) == 4
        assert {r.die_index for r in regions} == {0, 1}

    def test_str_mentions_name(self):
        device = FPGADevice(name="toy", dies=[small_die(0)])
        assert "toy" in str(device)


class TestTileYield:
    def test_clb_has_twice_dff_as_lut(self):
        y = TILE_YIELD[ColumnType.CLB]
        assert y.dff == 2 * y.lut

    def test_io_yields_nothing(self):
        assert TILE_YIELD[ColumnType.IO] == ResourceVector.zero()
