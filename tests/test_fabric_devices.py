"""Tests for the device catalog (Fig. 1 inputs, Table 4 substrate)."""

import pytest

from repro.fabric.devices import (
    CAPACITY_TIMELINE,
    DEVICE_CATALOG,
    device_by_name,
    make_vu13p,
    make_xcvu37p,
)


class TestXCVU37P:
    def test_three_dies(self):
        assert make_xcvu37p().num_dies == 3

    def test_capacity_near_datasheet(self):
        cap = make_xcvu37p().capacity
        assert cap.lut == pytest.approx(1.30e6, rel=0.03)
        assert cap.dff == pytest.approx(2.60e6, rel=0.03)
        assert cap.dsp == pytest.approx(8640, rel=0.06)
        assert cap.bram_mb == pytest.approx(78, rel=0.05)

    def test_five_clock_region_rows_per_die(self):
        device = make_xcvu37p()
        assert all(d.clock_region_rows == 5 for d in device.dies)

    def test_homogeneous_dies(self):
        assert make_xcvu37p().homogeneous_dies()


class TestVU13P:
    def test_four_dies(self):
        assert make_vu13p().num_dies == 4

    def test_larger_than_vu37p_in_logic(self):
        assert make_vu13p().capacity.lut > make_xcvu37p().capacity.lut

    def test_capacity_near_datasheet(self):
        cap = make_vu13p().capacity
        assert cap.lut == pytest.approx(1.73e6, rel=0.03)
        assert cap.dsp == pytest.approx(12288, rel=0.05)


class TestCatalog:
    def test_lookup_case_insensitive(self):
        assert device_by_name("xcvu37p").name == "XCVU37P"

    def test_unknown_device(self):
        with pytest.raises(KeyError, match="catalog has"):
            device_by_name("XC7Z020")

    def test_catalog_factories_build_fresh_instances(self):
        a = DEVICE_CATALOG["XCVU37P"]()
        b = DEVICE_CATALOG["XCVU37P"]()
        assert a is not b and a.capacity == b.capacity


class TestCapacityTimeline:
    def test_sorted_by_year(self):
        years = [p.year for p in CAPACITY_TIMELINE]
        assert years == sorted(years)

    def test_spans_two_decades(self):
        assert CAPACITY_TIMELINE[-1].year - CAPACITY_TIMELINE[0].year >= 15

    def test_growth_over_100x(self):
        # Fig. 1b's point: capacity grew by orders of magnitude
        first = CAPACITY_TIMELINE[0].logic_cells_k
        peak = max(p.logic_cells_k for p in CAPACITY_TIMELINE)
        assert peak / first > 100

    def test_monotone_in_trend(self):
        # the trend grows even though individual flagships fluctuate
        # (e.g. the HBM part XCVU37P trades logic for memory): each point
        # beats the one four generations earlier
        cells = [p.logic_cells_k for p in CAPACITY_TIMELINE]
        assert all(b > a for a, b in zip(cells, cells[4:]))
