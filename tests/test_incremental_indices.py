"""Differential tests for the incremental resource-database indices.

The System-Layer hot path replaced full-table rescans with indices
maintained on every transition (see ``runtime/resource_db.py``).  These
tests pin the equivalence: a randomized operation mix is applied to both
:class:`ResourceDB` (incremental) and :class:`RescanResourceDB` (the
original scan-per-query semantics), every query is compared after every
transition, and ``verify()`` cross-checks the indices against a rescan
of the block table.  A second group checks that ``verify()`` actually
detects corruption, so the cross-check itself cannot rot silently.

The same treatment covers the allocation policy: the pruned subset
search of :class:`CommunicationAwarePolicy` must pick the placement the
exhaustive enumeration picks, on random free maps.
"""

from __future__ import annotations

import random

import pytest

from repro.cluster.cluster import make_cluster
from repro.runtime.policy import CommunicationAwarePolicy
from repro.runtime.resource_db import (BlockState, RescanResourceDB,
                                       ResourceDB)


def _compare_queries(fast: ResourceDB, slow: RescanResourceDB) -> None:
    assert fast.free_blocks() == slow.free_blocks()
    assert fast.free_by_board() == slow.free_by_board()
    assert fast.allocated_count() == slow.allocated_count()
    assert fast.failed_count() == slow.failed_count()
    assert fast.failed_boards() == slow.failed_boards()
    assert fast.utilization() == slow.utilization()


class TestIncrementalMatchesRescan:
    @pytest.mark.parametrize("seed", range(4))
    def test_randomized_operation_mix(self, cluster, seed):
        rng = random.Random(seed)
        fast = ResourceDB(cluster)
        slow = RescanResourceDB(cluster)
        boards = [b.board_id for b in cluster.boards]
        live: list[int] = []
        next_id = 0
        for _ in range(300):
            roll = rng.random()
            if roll < 0.45:
                free = fast.free_blocks()
                if free:
                    blocks = rng.sample(free,
                                        rng.randint(1, min(8, len(free))))
                    next_id += 1
                    fast.allocate(next_id, blocks)
                    slow.allocate(next_id, blocks)
                    live.append(next_id)
            elif roll < 0.75 and live:
                rid = live.pop(rng.randrange(len(live)))
                assert fast.release(rid) == slow.release(rid)
            elif roll < 0.90:
                board = rng.choice(boards)
                if board in fast.failed_boards():
                    continue
                # the controller evicts a board's deployments before
                # failing it; mirror that contract here
                for rid in list(live):
                    if any(a[0] == board for a in fast.blocks_of(rid)):
                        live.remove(rid)
                        assert fast.release(rid) == slow.release(rid)
                fast.set_board_failed(board)
                slow.set_board_failed(board)
            else:
                failed = sorted(fast.failed_boards())
                if failed:
                    board = rng.choice(failed)
                    fast.set_board_repaired(board)
                    slow.set_board_repaired(board)
            _compare_queries(fast, slow)
            fast.verify()
            slow.verify()
        # per-request ownership also agrees at the end
        for rid in live:
            assert fast.blocks_of(rid) == sorted(slow.blocks_of(rid))

    def test_error_paths_agree(self, cluster):
        fast = ResourceDB(cluster)
        slow = RescanResourceDB(cluster)
        for db in (fast, slow):
            db.allocate(1, [(0, 0)])
            with pytest.raises(RuntimeError, match="already allocated"):
                db.allocate(2, [(0, 1), (0, 0)])
            with pytest.raises(RuntimeError, match="owns no blocks"):
                db.release(99)
            with pytest.raises(RuntimeError, match="still allocated"):
                db.set_board_failed(0)
        _compare_queries(fast, slow)
        fast.verify()


class TestVerifyDetectsTampering:
    """``verify()`` is only a safety net if it actually trips."""

    @pytest.fixture()
    def db(self, cluster):
        db = ResourceDB(cluster)
        db.allocate(7, [(0, 0), (1, 3)])
        db.release(7)
        db.allocate(8, [(0, 1), (2, 2)])
        db.verify()  # sane before each tamper
        return db

    def test_clean_database_verifies(self, db):
        db.verify()

    def test_detects_allocated_counter_drift(self, db):
        db._allocated += 1
        with pytest.raises(RuntimeError, match="allocated counter"):
            db.verify()

    def test_detects_failed_counter_drift(self, db):
        db._failed += 1
        with pytest.raises(RuntimeError, match="failed counter"):
            db.verify()

    def test_detects_phantom_failed_board(self, db):
        db._failed_boards.add(3)
        with pytest.raises(RuntimeError, match="failed-board set"):
            db.verify()

    def test_detects_free_set_divergence(self, db):
        db._free[0].add(1)  # (0, 1) is allocated to request 8
        with pytest.raises(RuntimeError, match="free sets diverge"):
            db.verify()

    def test_detects_owner_index_divergence(self, db):
        db._owned[8].discard((0, 1))
        with pytest.raises(RuntimeError, match="owner index diverges"):
            db.verify()

    def test_detects_stale_free_view(self, db):
        db.free_by_board()  # materialize the cached views
        db._free_view[0] = [999]
        with pytest.raises(RuntimeError, match="stale free view"):
            db.verify()

    def test_detects_state_owner_inconsistency(self, db):
        db._entries[(0, 1)].state = BlockState.FREE
        with pytest.raises(RuntimeError):
            db.verify()


class TestPrunedPolicyMatchesExhaustive:
    """The branch-and-bound subset search must pick exactly the subset
    the exhaustive ``C(n, k)`` enumeration picks (same span, same
    leftover, same lexicographic tie-break), so placements -- and hence
    every downstream summary -- are bit-identical."""

    @pytest.fixture(scope="class")
    def big_cluster(self, partition):
        return make_cluster(num_boards=8, partition=partition)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_free_maps(self, big_cluster, compiled_apps, seed):
        rng = random.Random(seed)
        pruned = CommunicationAwarePolicy(prune=True)
        exhaustive = CommunicationAwarePolicy(prune=False)
        boards = [b.board_id for b in big_cluster.boards]
        per_board = big_cluster.blocks_per_board
        for _ in range(25):
            free = {b: sorted(rng.sample(range(per_board),
                                         rng.randint(0, per_board)))
                    for b in boards}
            for app in compiled_apps.values():
                got = pruned.allocate(app, {b: list(v)
                                            for b, v in free.items()},
                                      big_cluster.network)
                want = exhaustive.allocate(app, {b: list(v)
                                                 for b, v in free.items()},
                                           big_cluster.network)
                if want is None:
                    assert got is None
                else:
                    assert got is not None
                    assert got.mapping == want.mapping
