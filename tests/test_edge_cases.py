"""Edge-case sweep across modules with lighter dedicated coverage."""

import pytest

from repro.cluster.cluster import make_cluster
from repro.fabric.device import ColumnType
from repro.fabric.resources import ResourceVector
from repro.hls.kernels import SHELL_CLOCK_HZ, benchmark
from repro.interconnect.channel import Channel
from repro.interconnect.links import LinkClass, LinkModel
from repro.runtime.controller import SystemController
from repro.runtime.policy import CommunicationAwarePolicy
from repro.sim.workload import WorkloadGenerator


class TestSingleBoardCluster:
    """Degenerate cluster: one board, ring of one node."""

    @pytest.fixture(scope="class")
    def solo(self):
        return make_cluster(num_boards=1)

    def test_ring_distance(self, solo):
        assert solo.network.distance(0, 0) == 0
        assert solo.network.span_cost([0]) == 0

    def test_deploy_works(self, solo, compiled_large):
        controller = SystemController(solo)
        d = controller.try_deploy(compiled_large, 0, 0.0)
        assert d is not None and not d.spans_boards
        controller.release(d)

    def test_policy_never_spans(self, solo, compiled_large):
        placement = CommunicationAwarePolicy().allocate(
            compiled_large, {0: list(range(15))}, solo.network)
        assert placement.num_boards == 1

    def test_no_room_returns_none(self, solo, compiled_large):
        controller = SystemController(solo)
        live = []
        while (d := controller.try_deploy(compiled_large,
                                          len(live), 0.0)):
            live.append(d)
        assert len(live) == 1  # 10-11 of 15 blocks used
        assert controller.try_deploy(compiled_large, 99, 0.0) is None


class TestEightBoardCluster:
    """A larger ring exercises multi-round subsets up to C(8, k)."""

    @pytest.fixture(scope="class")
    def wide(self):
        return make_cluster(num_boards=8)

    def test_ring_distances(self, wide):
        assert wide.network.distance(0, 4) == 4
        assert wide.network.distance(1, 7) == 2

    def test_policy_prefers_adjacent_pair(self, wide, compiled_large):
        free = {b: list(range(6)) for b in range(8)}
        placement = CommunicationAwarePolicy().allocate(
            compiled_large, free, wide.network)
        boards = placement.boards
        assert len(boards) == 2
        assert wide.network.distance(*boards) == 1

    def test_saturation_and_drain(self, wide, compiled_medium):
        controller = SystemController(wide)
        live = []
        while (d := controller.try_deploy(compiled_medium,
                                          len(live), 0.0)):
            live.append(d)
        assert controller.busy_blocks() \
            == len(live) * compiled_medium.num_blocks
        for d in live:
            controller.release(d)
        assert controller.busy_blocks() == 0


class TestLinkModelEdges:
    def test_custom_link_model(self):
        slow = LinkModel(kind=LinkClass.INTER_FPGA,
                         bandwidth_gbps=10.0, latency_cycles=1000,
                         deterministic=False)
        assert slow.bits_per_cycle == pytest.approx(40.0)
        assert slow.round_trip_cycles() == 2002

    def test_channel_with_custom_model(self):
        slow = LinkModel(kind=LinkClass.INTER_FPGA,
                         bandwidth_gbps=10.0, latency_cycles=5,
                         deterministic=False)
        ch = Channel("slow", slow, fifo_depth=16)
        ch.send(0)
        ch.step(5)
        assert ch.has_data()

    def test_zero_cycle_throughput(self):
        ch = Channel("c", LinkClass.ON_CHIP)
        assert ch.throughput_gbps(0) == 0.0


class TestKernelSpecEdges:
    def test_shell_clock_constant(self):
        assert SHELL_CLOCK_HZ == 250e6

    def test_spec_is_hashable_and_frozen(self):
        a = benchmark("vgg16", "S")
        b = benchmark("vgg16", "S")
        assert a == b and hash(a) == hash(b)
        with pytest.raises(AttributeError):
            a.family = "other"  # type: ignore[misc]

    def test_all_sizes_distinct_names(self):
        names = {benchmark("vgg16", s).name for s in "SML"}
        assert len(names) == 3


class TestWorkloadEdges:
    def test_single_request_set(self):
        requests = WorkloadGenerator().generate(1, num_requests=1)
        assert len(requests) == 1
        assert requests[0].request_id == 0

    def test_distinct_sets_distinct_mixes(self):
        gen = WorkloadGenerator(seed=1)
        all_s = gen.generate(1, num_requests=30)
        all_l = gen.generate(3, num_requests=30)
        assert {r.spec.size.value for r in all_s} == {"S"}
        assert {r.spec.size.value for r in all_l} == {"L"}


class TestFabricEdges:
    def test_column_type_str(self):
        assert str(ColumnType.BRAM) == "bram"

    def test_partition_user_columns_accounting(self, partition):
        total = sum(partition.user_columns.values()) \
            + sum(partition.reserved_columns.values())
        device_cols = sum(
            1 for kind in partition.device.dies[0].columns
            if kind is not ColumnType.IO)
        assert total == device_cols

    def test_block_sub_blocks(self, partition):
        assert all(b.sub_blocks == 2 for b in partition.blocks)

    def test_resource_vector_mul_zero(self):
        assert (ResourceVector(lut=5) * 0).is_zero()


class TestControllerStatusEdges:
    def test_running_snapshot_is_copy(self, cluster, compiled_small):
        controller = SystemController(cluster)
        controller.try_deploy(compiled_small, 0, 0.0)
        running = controller.running()
        running.clear()
        assert len(controller.running()) == 1

    def test_deploy_registers_bitstream(self, cluster,
                                        compiled_small):
        controller = SystemController(cluster)
        assert compiled_small.name not in controller.bitstream_db
        controller.try_deploy(compiled_small, 0, 0.0)
        assert compiled_small.name in controller.bitstream_db

    def test_config_port_queues_same_board(self, cluster,
                                           compiled_small):
        """Two simultaneous deployments to one board serialize on its
        configuration port; on different boards they do not."""
        controller = SystemController(cluster)
        times = []
        for rid in range(8):  # fill board 0 first, then board 1
            d = controller.try_deploy(compiled_small, rid, 0.0)
            times.append((d.placement.boards[0], d.reconfig_time_s))
        by_board: dict[int, list[float]] = {}
        for board, t in times:
            by_board.setdefault(board, []).append(t)
        for board, ts in by_board.items():
            if len(ts) >= 2:
                # each later deployment waits behind the earlier ones
                assert ts[1] > ts[0]
