"""Tests for the configuration-frame model behind relocation."""

import pytest
from hypothesis import given, settings, strategies as st, HealthCheck

from repro.compiler.frames import (
    ConfigFrame,
    FRAME_WORDS,
    FrameAddress,
    FrameRelocationError,
    PartialBitstream,
    frame_window,
    relocate_bitstream,
)


@pytest.fixture(scope="module")
def blocks(partition):
    return partition.blocks


@pytest.fixture(scope="module")
def columns(partition):
    return sum(partition.user_columns.values())


class TestFrameBasics:
    def test_payload_size_enforced(self):
        with pytest.raises(ValueError, match="bytes"):
            ConfigFrame(FrameAddress(0, 0), b"short")

    def test_duplicate_addresses_rejected(self):
        payload = bytes(FRAME_WORDS * 4)
        with pytest.raises(ValueError, match="duplicate"):
            PartialBitstream([ConfigFrame(FrameAddress(0, 0), payload),
                              ConfigFrame(FrameAddress(0, 0), payload)])

    def test_frames_sorted_by_address(self, blocks, columns):
        bs = PartialBitstream.for_block(blocks[0], columns)
        addresses = [f.address for f in bs.frames]
        assert addresses == sorted(addresses)

    def test_window_covers_block(self, blocks, columns):
        rows, cols = frame_window(blocks[0], columns)
        assert len(rows) == blocks[0].tile_rows
        assert len(cols) == columns

    def test_windows_disjoint_between_blocks(self, blocks, columns):
        r0, _ = frame_window(blocks[0], columns)
        r1, _ = frame_window(blocks[1], columns)
        assert set(r0).isdisjoint(set(r1))

    def test_for_block_deterministic_per_seed(self, blocks, columns):
        a = PartialBitstream.for_block(blocks[0], columns, seed=3)
        b = PartialBitstream.for_block(blocks[0], columns, seed=3)
        c = PartialBitstream.for_block(blocks[0], columns, seed=4)
        assert a.crc == b.crc != c.crc

    def test_verify_detects_corruption(self, blocks, columns):
        bs = PartialBitstream.for_block(blocks[0], columns, seed=9)
        assert bs.verify()
        original = bs.frames[0].payload
        flipped = bytes([original[0] ^ 0xFF]) + original[1:]
        bs.frames[0] = ConfigFrame(bs.frames[0].address, flipped)
        assert not bs.verify()


class TestFrameRelocation:
    def test_payloads_untouched(self, blocks, columns):
        bs = PartialBitstream.for_block(blocks[0], columns, seed=7)
        moved = relocate_bitstream(bs, blocks[0], blocks[1], columns)
        assert moved.payload_digest() == bs.payload_digest()
        assert moved.num_frames == bs.num_frames

    def test_addresses_land_in_target_window(self, blocks, columns):
        bs = PartialBitstream.for_block(blocks[0], columns)
        moved = relocate_bitstream(bs, blocks[0], blocks[-1], columns)
        rows, cols = frame_window(blocks[-1], columns)
        for frame in moved.frames:
            assert frame.address.row in rows
            assert frame.address.column in cols

    def test_roundtrip_is_identity(self, blocks, columns):
        bs = PartialBitstream.for_block(blocks[0], columns, seed=11)
        there = relocate_bitstream(bs, blocks[0], blocks[5], columns)
        back = relocate_bitstream(there, blocks[5], blocks[0], columns)
        assert back.crc == bs.crc

    def test_cross_die_relocation_works(self, blocks, columns):
        src = blocks[0]
        dst = next(b for b in blocks if b.die_index != src.die_index)
        bs = PartialBitstream.for_block(src, columns)
        moved = relocate_bitstream(bs, src, dst, columns)
        assert moved.verify()

    def test_foreign_footprint_rejected(self, blocks, columns):
        import dataclasses
        alien = dataclasses.replace(blocks[1], footprint="other")
        bs = PartialBitstream.for_block(blocks[0], columns)
        with pytest.raises(FrameRelocationError, match="congruent"):
            relocate_bitstream(bs, blocks[0], alien, columns)

    def test_out_of_window_frame_rejected(self, blocks, columns):
        payload = bytes(FRAME_WORDS * 4)
        rogue = PartialBitstream(
            [ConfigFrame(FrameAddress(row=999_999, column=0), payload)])
        with pytest.raises(FrameRelocationError, match="outside"):
            relocate_bitstream(rogue, blocks[0], blocks[1], columns)

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(src=st.integers(0, 14), dst=st.integers(0, 14),
           seed=st.integers(0, 1000))
    def test_relocation_property(self, src, dst, seed, partition):
        columns = sum(partition.user_columns.values())
        blocks = partition.blocks
        bs = PartialBitstream.for_block(blocks[src], columns, seed=seed)
        moved = relocate_bitstream(bs, blocks[src], blocks[dst],
                                   columns)
        assert moved.payload_digest() == bs.payload_digest()
        assert moved.verify()
        if src == dst:
            assert moved.crc == bs.crc
