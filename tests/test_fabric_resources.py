"""Unit and property tests for the resource algebra."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.fabric.resources import ResourceVector


def vec(lut=0, dff=0, dsp=0, bram=0.0):
    return ResourceVector(lut=lut, dff=dff, dsp=dsp, bram_mb=bram)


finite = st.floats(min_value=0, max_value=1e7, allow_nan=False,
                   allow_infinity=False)
vectors = st.builds(ResourceVector, lut=finite, dff=finite, dsp=finite,
                    bram_mb=finite)


class TestConstruction:
    def test_zero_is_all_zero(self):
        z = ResourceVector.zero()
        assert z.lut == z.dff == z.dsp == z.bram_mb == 0

    def test_of_alias(self):
        assert ResourceVector.of(lut=5, dsp=2) == vec(lut=5, dsp=2)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            ResourceVector(lut=float("nan"))

    def test_rejects_infinity(self):
        with pytest.raises(ValueError):
            ResourceVector(bram_mb=float("inf"))

    def test_frozen(self):
        with pytest.raises(AttributeError):
            vec(lut=1).lut = 2  # type: ignore[misc]


class TestAlgebra:
    def test_add(self):
        assert vec(1, 2, 3, 4.0) + vec(10, 20, 30, 40.0) \
            == vec(11, 22, 33, 44.0)

    def test_sub(self):
        assert vec(10, 20, 30, 40.0) - vec(1, 2, 3, 4.0) \
            == vec(9, 18, 27, 36.0)

    def test_scale(self):
        assert vec(2, 4, 6, 8.0) * 0.5 == vec(1, 2, 3, 4.0)

    def test_rmul(self):
        assert 3 * vec(1) == vec(3)

    def test_neg(self):
        assert -vec(1, 1, 1, 1.0) == vec(-1, -1, -1, -1.0)

    def test_add_wrong_type(self):
        with pytest.raises(TypeError):
            vec(1) + 5  # type: ignore[operator]

    def test_clamp_nonnegative(self):
        clamped = (vec(1) - vec(2, 0, 0, 3.0)).clamp_nonnegative()
        assert clamped == vec(0, 0, 0, 0.0)
        assert clamped.is_nonnegative()

    def test_max_with(self):
        assert vec(1, 9, 2, 0.5).max_with(vec(5, 3, 2, 1.0)) \
            == vec(5, 9, 2, 1.0)


class TestOrdering:
    def test_fits_in_true(self):
        assert vec(1, 2, 3, 4.0).fits_in(vec(1, 2, 3, 4.0))

    def test_fits_in_false_single_axis(self):
        # one overflowing component is enough to reject
        assert not vec(1, 2, 3, 4.1).fits_in(vec(9, 9, 9, 4.0))

    def test_dominates_is_inverse_of_fits(self):
        a, b = vec(5, 5, 5, 5.0), vec(2, 2, 2, 2.0)
        assert a.dominates(b) and b.fits_in(a)

    def test_is_zero(self):
        assert ResourceVector.zero().is_zero()
        assert not vec(dsp=1).is_zero()


class TestDerived:
    def test_utilization_max_component(self):
        demand = vec(50, 10, 0, 2.0)
        cap = vec(100, 100, 10, 4.0)
        assert demand.utilization_of(cap) == pytest.approx(0.5)

    def test_utilization_ignores_zero_demand_axes(self):
        assert vec(lut=10).utilization_of(vec(lut=20)) \
            == pytest.approx(0.5)

    def test_utilization_infinite_when_capacity_missing(self):
        assert math.isinf(vec(dsp=1).utilization_of(vec(lut=100, dff=100)))

    def test_blocks_needed_exact(self):
        assert vec(lut=100).blocks_needed(vec(lut=50, dff=1)) == 2

    def test_blocks_needed_rounds_up(self):
        assert vec(lut=101).blocks_needed(vec(lut=50, dff=1)) == 3

    def test_blocks_needed_minimum_one(self):
        assert vec(lut=1).blocks_needed(vec(lut=1000, dff=1)) == 1

    def test_blocks_needed_rejects_impossible(self):
        with pytest.raises(ValueError):
            vec(dsp=1).blocks_needed(vec(lut=1000, dff=1))

    def test_total_cost_monotone(self):
        assert vec(10, 10, 1, 0.1).total_cost() \
            > vec(5, 5, 1, 0.1).total_cost()

    def test_as_dict_roundtrip(self):
        v = vec(1, 2, 3, 4.0)
        assert ResourceVector(**v.as_dict()) == v

    def test_str_compact(self):
        text = str(vec(79200, 158400, 580, 4.22))
        assert "79.2k LUT" in text and "580 DSP" in text


class TestProperties:
    @given(vectors, vectors)
    def test_add_commutative(self, a, b):
        assert a + b == b + a

    @given(vectors, vectors, vectors)
    def test_add_associative(self, a, b, c):
        left = (a + b) + c
        right = a + (b + c)
        for f in ("lut", "dff", "dsp", "bram_mb"):
            assert getattr(left, f) == pytest.approx(getattr(right, f))

    @given(vectors)
    def test_zero_identity(self, a):
        assert a + ResourceVector.zero() == a

    @given(vectors, vectors)
    def test_fits_in_antisymmetric_up_to_equality(self, a, b):
        if a.fits_in(b) and b.fits_in(a):
            assert a == b

    @given(vectors, vectors, vectors)
    def test_fits_in_transitive(self, a, b, c):
        if a.fits_in(b) and b.fits_in(c):
            assert a.fits_in(c)

    @given(vectors, vectors)
    def test_sum_fits_when_parts_fit_half(self, a, b):
        cap = a.max_with(b) * 2
        assert (a + b).fits_in(cap)

    @given(vectors)
    def test_blocks_needed_covers_demand(self, demand):
        cap = ResourceVector(lut=1000, dff=1000, dsp=100, bram_mb=10)
        n = demand.blocks_needed(cap)
        # n blocks must actually cover the demand (allowing float slack)
        assert demand.fits_in(cap * (n * (1 + 1e-9) + 1e-9))

    @given(vectors, st.floats(min_value=0.1, max_value=10))
    def test_utilization_scales_linearly(self, v, k):
        cap = ResourceVector(lut=1e6, dff=1e6, dsp=1e4, bram_mb=100)
        if v.is_zero():
            return
        assert (v * k).utilization_of(cap) \
            == pytest.approx(v.utilization_of(cap) * k, rel=1e-6)
