"""Fault schedule: typed events, ordering, seeded generators."""

from __future__ import annotations

import pytest

from repro.faults import (
    BoardDown,
    BoardUp,
    FaultSchedule,
    LinkDegraded,
    LinkRestored,
    ReconfigTransientFault,
)


class TestEvents:
    def test_events_are_immutable(self):
        event = BoardDown(time_s=1.0, board=2)
        with pytest.raises(Exception):
            event.board = 3

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            BoardDown(time_s=-0.5, board=0)

    def test_capacity_fraction_bounds(self):
        LinkDegraded(time_s=0.0, segment=0, capacity_fraction=1.0)
        LinkDegraded(time_s=0.0, segment=0, capacity_fraction=0.01)
        with pytest.raises(ValueError):
            LinkDegraded(time_s=0.0, segment=0, capacity_fraction=0.0)
        with pytest.raises(ValueError):
            LinkDegraded(time_s=0.0, segment=0, capacity_fraction=1.5)

    def test_reconfig_fault_attempts_positive(self):
        with pytest.raises(ValueError):
            ReconfigTransientFault(time_s=0.0, board=0, attempts=0)


class TestSchedule:
    def test_events_sorted_by_time_stably(self):
        a = BoardDown(time_s=5.0, board=0)
        b = BoardUp(time_s=1.0, board=0)
        c = LinkDegraded(time_s=5.0, segment=1, capacity_fraction=0.5)
        schedule = FaultSchedule([a, b, c])
        assert list(schedule) == [b, a, c]  # ties keep insertion order

    def test_empty_schedule_is_falsy(self):
        assert not FaultSchedule.empty()
        assert len(FaultSchedule.empty()) == 0
        assert bool(FaultSchedule([BoardDown(time_s=0.0, board=0)]))

    def test_boards_touched(self):
        schedule = FaultSchedule([
            BoardDown(time_s=0.0, board=2),
            BoardUp(time_s=1.0, board=2),
            ReconfigTransientFault(time_s=2.0, board=3),
            LinkDegraded(time_s=3.0, segment=0, capacity_fraction=0.5),
        ])
        assert schedule.boards_touched() == {2, 3}

    def test_validate_for_rejects_out_of_range_board(self):
        schedule = FaultSchedule([BoardDown(time_s=0.0, board=7)])
        schedule.validate_for(num_boards=8)
        with pytest.raises(ValueError, match="board 7"):
            schedule.validate_for(num_boards=4)


class TestExponential:
    def test_same_seed_same_schedule(self):
        kwargs = dict(horizon_s=500.0, num_boards=4,
                      board_mtbf_s=100.0, board_mttr_s=25.0,
                      link_mtbf_s=150.0, link_mttr_s=10.0)
        s1 = FaultSchedule.exponential(seed=11, **kwargs)
        s2 = FaultSchedule.exponential(seed=11, **kwargs)
        assert list(s1) == list(s2)
        assert len(s1) > 0

    def test_different_seed_different_schedule(self):
        kwargs = dict(horizon_s=500.0, num_boards=4,
                      board_mtbf_s=50.0, board_mttr_s=25.0)
        s1 = FaultSchedule.exponential(seed=1, **kwargs)
        s2 = FaultSchedule.exponential(seed=2, **kwargs)
        assert list(s1) != list(s2)

    def test_down_up_pairing_inside_horizon(self):
        schedule = FaultSchedule.exponential(
            seed=5, horizon_s=300.0, num_boards=3,
            board_mtbf_s=40.0, board_mttr_s=20.0)
        down: dict[int, int] = {}
        for event in schedule:
            assert 0.0 <= event.time_s <= 300.0
            if isinstance(event, BoardDown):
                assert down.get(event.board, 0) == 0
                down[event.board] = down.get(event.board, 0) + 1
            elif isinstance(event, BoardUp):
                assert down[event.board] == 1
                down[event.board] -= 1
        # every down has its matching up clamped into the horizon
        assert all(v == 0 for v in down.values())

    def test_no_rates_no_events(self):
        schedule = FaultSchedule.exponential(
            seed=0, horizon_s=100.0, num_boards=4)
        assert len(schedule) == 0

    def test_link_events_pair_and_restore(self):
        schedule = FaultSchedule.exponential(
            seed=9, horizon_s=400.0, num_boards=4,
            link_mtbf_s=60.0, link_mttr_s=15.0,
            link_capacity_fraction=0.25)
        degraded: set[int] = set()
        saw_link = False
        for event in schedule:
            if isinstance(event, LinkDegraded):
                saw_link = True
                assert event.capacity_fraction == 0.25
                assert event.segment not in degraded
                degraded.add(event.segment)
            elif isinstance(event, LinkRestored):
                assert event.segment in degraded
                degraded.discard(event.segment)
        assert saw_link
        assert not degraded


class TestRateValidation:
    """Non-positive MTBF/MTTR must fail loudly, not generate a
    degenerate everything-fails-at-t0 schedule."""

    @pytest.mark.parametrize("field", [
        "board_mtbf_s", "board_mttr_s", "link_mtbf_s", "link_mttr_s",
        "reconfig_fault_mtbf_s"])
    @pytest.mark.parametrize("value", [0.0, -1.0])
    def test_non_positive_rates_rejected(self, field, value):
        with pytest.raises(ValueError, match=field):
            FaultSchedule.exponential(
                seed=0, horizon_s=100.0, num_boards=4,
                **{field: value})

    def test_bad_horizon_and_board_count_rejected(self):
        with pytest.raises(ValueError, match="horizon"):
            FaultSchedule.exponential(seed=0, horizon_s=0.0,
                                      num_boards=4)
        with pytest.raises(ValueError, match="board"):
            FaultSchedule.exponential(seed=0, horizon_s=10.0,
                                      num_boards=0)

    def test_positive_rates_still_accepted(self):
        schedule = FaultSchedule.exponential(
            seed=0, horizon_s=200.0, num_boards=4,
            board_mtbf_s=50.0, board_mttr_s=10.0)
        assert len(schedule) > 0


class TestGrayEvents:
    def test_flaky_drop_probability_bounds(self):
        from repro.faults import LinkFlaky
        LinkFlaky(time_s=0.0, segment=0, drop_probability=0.5)
        with pytest.raises(ValueError):
            LinkFlaky(time_s=0.0, segment=0, drop_probability=0.0)
        with pytest.raises(ValueError):
            LinkFlaky(time_s=0.0, segment=0, drop_probability=1.0)

    def test_icap_multiplier_must_slow_not_speed(self):
        from repro.faults import IcapDegraded
        IcapDegraded(time_s=0.0, board=0, latency_multiplier=1.5)
        with pytest.raises(ValueError):
            IcapDegraded(time_s=0.0, board=0, latency_multiplier=0.9)

    def test_gray_events_touch_boards(self):
        from repro.faults import (IcapDegraded, IcapRestored,
                                  LinkFlaky, LinkStable)
        schedule = FaultSchedule([
            IcapDegraded(time_s=0.0, board=2, latency_multiplier=2.0),
            IcapRestored(time_s=5.0, board=2),
            LinkFlaky(time_s=1.0, segment=1, drop_probability=0.1),
            LinkStable(time_s=6.0, segment=1),
        ])
        assert schedule.boards_touched() == {2}
        schedule.validate_for(4)
        with pytest.raises(ValueError):
            schedule.validate_for(1)
