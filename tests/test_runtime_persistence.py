"""Tests for bitstream-database persistence."""

import json

import pytest

from repro.runtime.bitstream_db import BitstreamDB
from repro.runtime.persistence import (
    app_from_dict,
    app_to_dict,
    load_bitstream_db,
    save_bitstream_db,
)


@pytest.fixture()
def db(cluster, compiled_small, compiled_large):
    db = BitstreamDB(cluster.footprint)
    db.register(compiled_small)
    db.register(compiled_large)
    return db


class TestAppRoundTrip:
    def test_roundtrip_preserves_identity(self, compiled_large):
        restored = app_from_dict(app_to_dict(compiled_large))
        assert restored.name == compiled_large.name
        assert restored.num_blocks == compiled_large.num_blocks
        assert restored.footprint == compiled_large.footprint
        assert restored.fmax_mhz \
            == pytest.approx(compiled_large.fmax_mhz)
        assert restored.flows == compiled_large.flows
        assert restored.spec.resources == compiled_large.spec.resources

    def test_roundtrip_interface(self, compiled_large):
        restored = app_from_dict(app_to_dict(compiled_large))
        assert len(restored.interface.channels) \
            == len(compiled_large.interface.channels)
        assert restored.interface.verify_deadlock_free()

    def test_roundtrip_service_time(self, compiled_small):
        restored = app_from_dict(app_to_dict(compiled_small))
        assert restored.service_time_s() \
            == pytest.approx(compiled_small.service_time_s())

    def test_restored_app_validates(self, compiled_medium):
        app_from_dict(app_to_dict(compiled_medium)).validate()

    def test_json_serializable(self, compiled_large):
        json.dumps(app_to_dict(compiled_large))  # no exception


class TestDatabaseRoundTrip:
    def test_save_load(self, db, cluster, tmp_path):
        path = tmp_path / "db.json"
        save_bitstream_db(db, path)
        restored = load_bitstream_db(path, cluster.footprint)
        assert restored.names() == db.names()

    def test_restored_apps_deploy(self, db, cluster, tmp_path):
        from repro.runtime.controller import SystemController
        path = tmp_path / "db.json"
        save_bitstream_db(db, path)
        restored = load_bitstream_db(path, cluster.footprint)
        controller = SystemController(cluster)
        app = restored.lookup(db.names()[0])
        deployment = controller.try_deploy(app, 1, 0.0)
        assert deployment is not None
        controller.release(deployment)

    def test_footprint_mismatch_refused(self, db, tmp_path):
        path = tmp_path / "db.json"
        save_bitstream_db(db, path)
        with pytest.raises(ValueError, match="recompile"):
            load_bitstream_db(path, "some-other-footprint")

    def test_foreign_document_refused(self, tmp_path, cluster):
        path = tmp_path / "junk.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError, match="not a bitstream"):
            load_bitstream_db(path, cluster.footprint)

    def test_wrong_version_refused(self, db, cluster, tmp_path):
        path = tmp_path / "db.json"
        save_bitstream_db(db, path)
        payload = json.loads(path.read_text())
        payload["version"] = 42
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="version"):
            load_bitstream_db(path, cluster.footprint)
