"""Differential tests: the array event engine vs the heapq oracle.

``run_experiment(engine="array")`` must be byte-identical to
``engine="heapq"`` -- traces, summaries, per-request records, and the
policy search counters inside the trace -- while the cohort fast path
and the admission prefilter only engage where they provably cannot
change results (untraced strict-FIFO runs).  The SJF sorted-queue
rewrite rides the same bar: identical admit order, including on
arrival-time ties.
"""

from __future__ import annotations

import random
from dataclasses import asdict

import pytest

from repro.cluster.cluster import make_cluster
from repro.faults.schedule import FaultSchedule
from repro.obs.tracer import Tracer
from repro.runtime.controller import SystemController
from repro.sim.experiment import run_experiment
from repro.sim.workload import Request


def _requests(compiled_apps, num=240, interarrival=0.4, seed=3):
    """Mixed-size stream over the fixture apps with deliberate
    arrival-time ties (15% of gaps are zero, times rounded to ms)."""
    rng = random.Random(seed)
    apps = sorted(compiled_apps.values(), key=lambda a: a.name)
    t, out = 0.0, []
    for i in range(num):
        app = rng.choice(apps)
        out.append(Request(request_id=i, spec=app.spec,
                           arrival_s=round(t, 3)))
        if rng.random() < 0.85:
            t += rng.expovariate(1.0 / interarrival)
    return out


def _run(engine, requests, apps, boards=8, **kwargs):
    manager = SystemController(make_cluster(num_boards=boards))
    return run_experiment(manager, requests, apps, engine=engine,
                          **kwargs)


def _shape(result):
    return (asdict(result.summary),
            [asdict(r) for r in result.records])


class TestEngineEquivalence:
    def test_unknown_engine_rejected(self, compiled_apps):
        with pytest.raises(ValueError, match="unknown event engine"):
            _run("simd", _requests(compiled_apps, num=2), compiled_apps)

    def test_untraced_saturated_runs_identical(self, compiled_apps):
        """Saturating FIFO load -- the cohort fast path engages on the
        array side and must change nothing."""
        requests = _requests(compiled_apps, num=240, interarrival=0.1)
        shapes = {engine: _shape(_run(engine, requests, compiled_apps))
                  for engine in ("heapq", "array")}
        assert shapes["heapq"] == shapes["array"]

    def test_traced_runs_byte_identical(self, compiled_apps):
        """Retained traces -- search counters included -- must match
        byte for byte (the fast paths are off; pure pop-order parity)."""
        requests = _requests(compiled_apps, num=160, interarrival=0.2)
        traces, shapes = {}, {}
        for engine in ("heapq", "array"):
            tracer = Tracer()
            result = _run(engine, requests, compiled_apps,
                          tracer=tracer)
            traces[engine] = tracer.to_jsonl()
            shapes[engine] = _shape(result)
        assert traces["heapq"] == traces["array"]
        assert shapes["heapq"] == shapes["array"]

    def test_fast_paths_match_observed_path(self, compiled_apps):
        """Untraced (cohort fast path + prefilter on) vs traced (both
        off): simulation results are identical either way."""
        requests = _requests(compiled_apps, num=200, interarrival=0.1)
        plain = _run("array", requests, compiled_apps)
        observed = _run("array", requests, compiled_apps,
                        tracer=Tracer(retain=False))
        assert _shape(plain) == _shape(observed)

    @pytest.mark.parametrize("discipline", ["fifo", "backfill", "sjf"])
    def test_engines_identical_under_faults(self, compiled_apps,
                                            discipline):
        requests = _requests(compiled_apps, num=160, interarrival=0.3)
        shapes = {}
        for engine in ("heapq", "array"):
            shapes[engine] = _shape(_run(
                engine, requests, compiled_apps,
                discipline=discipline, faults=FaultSchedule.demo(8),
                recovery="migrate-on-failure"))
        assert shapes["heapq"] == shapes["array"]

    def test_engines_identical_with_defrag(self, compiled_apps):
        requests = _requests(compiled_apps, num=120, interarrival=0.25)
        shapes = {engine: _shape(_run(engine, requests, compiled_apps,
                                      defrag=True))
                  for engine in ("heapq", "array")}
        assert shapes["heapq"] == shapes["array"]

    def test_engines_identical_under_backfill_prefilter(self,
                                                        compiled_apps):
        """Heavy backfill queue on a tiny cluster: the prefilter culls
        can't-fit-anywhere requests on both engines; results match the
        observed (prefilter-off) run too."""
        requests = _requests(compiled_apps, num=200, interarrival=0.05)
        shapes = {engine: _shape(_run(engine, requests, compiled_apps,
                                      boards=2,
                                      discipline="backfill"))
                  for engine in ("heapq", "array")}
        observed = _shape(_run("array", requests, compiled_apps,
                               boards=2, discipline="backfill",
                               tracer=Tracer(retain=False)))
        assert shapes["heapq"] == shapes["array"] == observed


class TestSJFSortedQueue:
    def test_sjf_tie_order_is_arrival_order(self, compiled_apps,
                                            compiled_medium):
        """All-equal service times and arrival-time ties: the insort
        queue must admit in request-id (= arrival) order, exactly like
        the old full re-sort's stable tie-break."""
        spec = compiled_medium.spec
        requests = [Request(request_id=i, spec=spec, arrival_s=0.0)
                    for i in range(12)]
        result = _run("array", requests, compiled_apps, boards=4,
                      discipline="sjf")
        deploys = sorted(result.records,
                         key=lambda r: (r.deployed_s, r.request_id))
        assert [r.request_id for r in deploys] == list(range(12))
        # ids deployed at strictly increasing times stay in id order
        ordered = sorted(result.records, key=lambda r: r.deployed_s)
        times = [r.deployed_s for r in ordered]
        assert times == sorted(times)

    def test_sjf_mixed_sizes_order_by_service_then_id(self,
                                                      compiled_apps):
        """Shorter jobs jump longer ones; equal lengths keep id order
        -- the (service, id) invariant, asserted on the admit stream."""
        requests = _requests(compiled_apps, num=80, interarrival=0.05, seed=9)
        shapes = {engine: _shape(_run(engine, requests, compiled_apps,
                                      boards=4, discipline="sjf"))
                  for engine in ("heapq", "array")}
        assert shapes["heapq"] == shapes["array"]

    def test_sjf_arrival_tie_requeue_after_fault(self, compiled_apps):
        """Eviction requeues merge back into the sorted queue without
        disturbing (service, id) order."""
        requests = _requests(compiled_apps, num=60, interarrival=0.2, seed=5)
        shapes = {engine: _shape(_run(
            engine, requests, compiled_apps, boards=8,
            discipline="sjf", faults=FaultSchedule.demo(8)))
            for engine in ("heapq", "array")}
        assert shapes["heapq"] == shapes["array"]


class TestCohortFastPathGates:
    """The cohort fast path must stay off whenever anything observes
    per-arrival behavior; these runs force the gate closed and compare
    engines anyway."""

    def test_metrics_registry_allowed_and_identical(self, compiled_apps):
        from repro.obs.metrics import MetricsRegistry
        requests = _requests(compiled_apps, num=120, interarrival=0.1)
        exports = {}
        for engine in ("heapq", "array"):
            registry = MetricsRegistry()
            _run(engine, requests, compiled_apps, metrics=registry)
            exports[engine] = registry.to_prometheus()
        assert exports["heapq"] == exports["array"]

    def test_guard_disables_cohorts_and_matches(self, compiled_apps):
        from repro.runtime.guard import DegradedModeGuard
        requests = _requests(compiled_apps, num=100, interarrival=0.15)
        shapes = {}
        for engine in ("heapq", "array"):
            shapes[engine] = _shape(_run(
                engine, requests, compiled_apps,
                guard=DegradedModeGuard(),
                faults=FaultSchedule.demo(8)))
        assert shapes["heapq"] == shapes["array"]

    def test_probe_sees_every_event(self, compiled_apps):
        """A probe must fire per event on both engines -- the fast
        path is gated off when one is attached."""
        requests = _requests(compiled_apps, num=60, interarrival=0.1)
        calls = {}
        for engine in ("heapq", "array"):
            seen = []
            _run(engine, requests, compiled_apps,
                 probe=lambda now, manager: seen.append(now))
            calls[engine] = seen
        assert calls["heapq"] == calls["array"]
        assert len(calls["array"]) >= 2 * len(requests)
