"""Tests for the FM min-cut partitioner (the Section 4 alternative)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.fm import FMPartitioner, fm_bipartition
from repro.compiler.partitioner import NetlistPartitioner, blocks_for
from repro.fabric.resources import ResourceVector
from repro.hls.frontend import synthesize
from repro.hls.kernels import benchmark
from repro.netlist.netlist import Netlist
from repro.netlist.primitives import PrimitiveType


def two_communities(k=12, seed=0):
    """Two densely connected groups joined by one thin net."""
    nl = Netlist("communities")
    res = ResourceVector(lut=10, dff=20)
    groups = []
    for _ in range(2):
        members = [nl.add_primitive(PrimitiveType.MACRO, resources=res)
                   for _ in range(k)]
        for i, a in enumerate(members):
            for b in members[i + 1:i + 4]:
                nl.add_net(a, [b], width_bits=32)
        groups.append(members)
    nl.add_net(groups[0][-1], [groups[1][0]], width_bits=1)
    return nl, groups


class TestBipartition:
    def test_finds_the_natural_cut(self):
        nl, groups = two_communities()
        cap = ResourceVector(lut=130, dff=260)
        left, right = fm_bipartition(nl, sorted(nl.primitives),
                                     cap, cap)
        sides = [left, right]
        # each community lands whole on one side
        for group in groups:
            on_left = sum(1 for u in group if u in left)
            assert on_left in (0, len(group))
        assignment = {u: 0 for u in left} | {u: 1 for u in right}
        assert nl.cut_bandwidth(assignment) == 1  # only the thin net

    def test_balance_respected(self):
        nl, _ = two_communities()
        cap = ResourceVector(lut=130, dff=260)
        left, right = fm_bipartition(nl, sorted(nl.primitives),
                                     cap, cap)
        for side in (left, right):
            total = sum((nl.primitives[u].resources for u in side),
                        ResourceVector.zero())
            assert total.fits_in(cap)

    def test_infeasible_balance_raises(self):
        nl, _ = two_communities(k=6)
        tiny = ResourceVector(lut=20, dff=40)
        with pytest.raises(ValueError, match="balance"):
            fm_bipartition(nl, sorted(nl.primitives), tiny, tiny)

    def test_deterministic_per_seed(self):
        nl, _ = two_communities()
        cap = ResourceVector(lut=130, dff=260)
        a = fm_bipartition(nl, sorted(nl.primitives), cap, cap, seed=5)
        b = fm_bipartition(nl, sorted(nl.primitives), cap, cap, seed=5)
        assert a == b


class TestFMProperties:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000), k=st.integers(8, 30))
    def test_bipartition_always_balanced_or_raises(self, seed, k):
        nl, _ = two_communities(k=k, seed=seed)
        cap = ResourceVector(lut=11 * k, dff=22 * k)
        try:
            left, right = fm_bipartition(nl, sorted(nl.primitives),
                                         cap, cap, seed=seed)
        except ValueError:
            return  # explicit refusal is acceptable; silence is not
        for side in (left, right):
            total = sum((nl.primitives[u].resources for u in side),
                        ResourceVector.zero())
            assert total.fits_in(cap)
        assert left | right == set(nl.primitives)
        assert not left & right

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_fm_never_worse_than_everything_cut(self, seed):
        """FM's cut never exceeds the total net weight (sanity bound)."""
        nl, _ = two_communities(k=10, seed=seed)
        cap = ResourceVector(lut=120, dff=240)
        left, right = fm_bipartition(nl, sorted(nl.primitives),
                                     cap, cap, seed=seed)
        assignment = {u: 0 for u in left} | {u: 1 for u in right}
        total_weight = sum(n.width_bits for n in nl.nets.values())
        assert nl.cut_bandwidth(assignment) <= total_weight


class TestFMPartitioner:
    def test_all_table2_designs_partition(self, partition):
        """Every multi-block benchmark survives recursive FM."""
        cap = partition.block_capacity
        for family, size in [("lenet5", "M"), ("svhn", "L"),
                             ("vgg16", "L")]:
            spec = benchmark(family, size)
            netlist = synthesize(spec)
            result = FMPartitioner(cap).partition(netlist)
            result.validate(cap)
            assert set(result.assignment) == set(netlist.primitives)

    def test_cut_in_same_class_as_placement_based(self, partition):
        """FM (pure min-cut) and the paper's algorithm land in the same
        cut ballpark; neither dominates across designs."""
        cap = partition.block_capacity
        spec = benchmark("alexnet", "L")
        netlist = synthesize(spec)
        n = blocks_for(spec.resources, cap)
        fm = FMPartitioner(cap).partition(netlist, num_blocks=n)
        pl = NetlistPartitioner(cap).partition(netlist, num_blocks=n)
        ratio = fm.cut_bandwidth_bits / pl.cut_bandwidth_bits
        assert 0.1 < ratio < 10

    def test_may_use_extra_blocks_when_tight(self, partition):
        """FM's bisection tree sometimes needs retry blocks -- the
        utilization cost the ablation quantifies."""
        cap = partition.block_capacity
        spec = benchmark("svhn", "L")
        netlist = synthesize(spec)
        n = blocks_for(spec.resources, cap)
        result = FMPartitioner(cap).partition(netlist, num_blocks=n)
        assert n <= result.num_blocks <= n + 2

    def test_single_block(self, partition):
        netlist = synthesize(benchmark("mlp-mnist", "S"))
        result = FMPartitioner(partition.block_capacity).partition(
            netlist, num_blocks=1)
        assert result.num_blocks == 1
        assert result.cut_bandwidth_bits == 0

    def test_impossible_raises(self, partition):
        netlist = synthesize(benchmark("svhn", "L"))
        tiny = partition.block_capacity * 0.05
        with pytest.raises(RuntimeError, match="FM partitioning"):
            FMPartitioner(tiny).partition(netlist, num_blocks=2,
                                          max_retries=0)
