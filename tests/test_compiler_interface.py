"""Tests for latency-insensitive interface generation (flow step 3)."""

import pytest

from repro.compiler.interface_gen import (
    ChannelSpec,
    InterfaceGenerator,
    LatencyInsensitiveInterface,
)
from repro.compiler.partitioner import NetlistPartitioner
from repro.hls.frontend import synthesize
from repro.hls.kernels import benchmark


def make_interface(channels, num_blocks):
    return LatencyInsensitiveInterface(app_name="t", channels=channels,
                                       num_blocks=num_blocks)


def chan(src, dst, bits=64.0, tokens=0):
    return ChannelSpec(src_block=src, dst_block=dst, payload_bits=bits,
                       init_tokens=tokens)


class TestChannelSpec:
    def test_serialization_factor_minimum_one(self):
        assert chan(0, 1, bits=8).serialization_factor == 1.0

    def test_serialization_factor_wide_payload(self):
        assert chan(0, 1, bits=2048).serialization_factor \
            == pytest.approx(2048 / 512)

    def test_buffer_cost_scales_with_depth(self):
        a = ChannelSpec(0, 1, 64, fifo_depth=256)
        b = ChannelSpec(0, 1, 64, fifo_depth=512)
        assert b.buffer_cost().bram_mb \
            == pytest.approx(2 * a.buffer_cost().bram_mb)

    def test_control_cost_has_logic(self):
        cost = chan(0, 1).control_cost()
        assert cost.lut > 0 and cost.dff > 0


class TestInterfaceModel:
    def test_ports_required_counts_endpoints(self):
        iface = make_interface([chan(0, 1), chan(1, 2), chan(0, 2)], 3)
        assert iface.ports_required() == {0: 2, 1: 2, 2: 2}

    def test_total_cut_bits(self):
        iface = make_interface([chan(0, 1, 100), chan(1, 0, 50)], 2)
        assert iface.total_cut_bits() == 150

    def test_resource_cost_without_buffers(self):
        iface = make_interface([chan(0, 1)], 2)
        assert iface.resource_cost().bram_mb == 0

    def test_resource_cost_with_buffers(self):
        iface = make_interface([chan(0, 1)], 2)
        assert iface.resource_cost(count_intra_buffers=True).bram_mb > 0

    def test_acyclic_interface_deadlock_free(self):
        iface = make_interface([chan(0, 1), chan(1, 2)], 3)
        assert iface.verify_deadlock_free()

    def test_cycle_without_tokens_flagged(self):
        iface = make_interface([chan(0, 1), chan(1, 0)], 2)
        assert not iface.verify_deadlock_free()

    def test_cycle_with_tokens_passes(self):
        iface = make_interface(
            [chan(0, 1), chan(1, 0, tokens=8)], 2)
        assert iface.verify_deadlock_free()

    def test_self_loop_needs_tokens(self):
        assert not make_interface([chan(0, 0)], 1).verify_deadlock_free()
        assert make_interface([chan(0, 0, tokens=1)],
                              1).verify_deadlock_free()


class TestGenerator:
    @pytest.fixture(scope="class")
    def generated(self, partition):
        netlist = synthesize(benchmark("lenet5", "M"))
        part = NetlistPartitioner(
            partition.block_capacity).partition(netlist)
        return InterfaceGenerator().generate(part), part

    def test_one_channel_per_flow(self, generated):
        iface, part = generated
        assert len(iface.channels) == len(part.flows)

    def test_payloads_match_flows(self, generated):
        iface, part = generated
        for ch in iface.channels:
            assert ch.payload_bits \
                == part.flows[(ch.src_block, ch.dst_block)]

    def test_generated_interface_deadlock_free(self, generated):
        iface, _ = generated
        assert iface.verify_deadlock_free()

    def test_cycles_received_tokens(self, generated):
        iface, _ = generated
        graph = iface.channel_graph()
        import networkx as nx
        if not nx.is_directed_acyclic_graph(graph):
            assert any(ch.init_tokens > 0 for ch in iface.channels)

    def test_single_block_app_has_no_channels(self, partition):
        netlist = synthesize(benchmark("mlp-mnist", "S"))
        part = NetlistPartitioner(
            partition.block_capacity).partition(netlist)
        iface = InterfaceGenerator().generate(part)
        assert iface.channels == []
        assert iface.verify_deadlock_free()
