"""Tests for the consolidated report builder."""

from repro.analysis.summary import REPORT_ORDER, build_report, \
    write_report


def seed_results(tmp_path, stems):
    for stem in stems:
        (tmp_path / f"{stem}.txt").write_text(f"body of {stem}\n")


class TestBuildReport:
    def test_includes_present_sections_in_order(self, tmp_path):
        seed_results(tmp_path, ["fig9", "fig1a", "table2"])
        report = build_report(tmp_path)
        # narrative order, not alphabetical or insertion order
        assert report.index("Fig. 1a") < report.index("Table 2") \
            < report.index("Fig. 9")
        assert "body of fig9" in report

    def test_reports_missing_benches(self, tmp_path):
        seed_results(tmp_path, ["fig9"])
        report = build_report(tmp_path)
        assert "Missing" in report
        assert "fig10" in report

    def test_complete_run_reports_no_missing(self, tmp_path):
        seed_results(tmp_path, [stem for stem, _ in REPORT_ORDER])
        report = build_report(tmp_path)
        assert "Missing" not in report
        assert f"{len(REPORT_ORDER)} of {len(REPORT_ORDER)}" in report

    def test_write_report_default_path(self, tmp_path):
        seed_results(tmp_path, ["fig9"])
        path = write_report(tmp_path)
        assert path == tmp_path / "REPORT.md"
        assert "Fig. 9" in path.read_text()

    def test_empty_results_dir(self, tmp_path):
        report = build_report(tmp_path)
        assert "0 of" in report
