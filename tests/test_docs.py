"""Documentation-accuracy tests.

Docs rot silently; these tests execute the README's quickstart code
verbatim and check that every file, module and bench the documentation
references actually exists, so a passing suite vouches for the docs too.
"""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).parent.parent


def extract_python_blocks(markdown: str) -> list[str]:
    return re.findall(r"```python\n(.*?)```", markdown, re.S)


class TestReadme:
    @pytest.fixture(scope="class")
    def readme(self):
        return (ROOT / "README.md").read_text()

    def test_quickstart_code_executes(self, readme):
        blocks = extract_python_blocks(readme)
        assert blocks, "README lost its quickstart"
        namespace: dict = {}
        exec(blocks[0], namespace)  # noqa: S102 - doc verification

    def test_examples_listed_exist(self, readme):
        for name in re.findall(r"`(\w+\.py)`", readme):
            assert (ROOT / "examples" / name).exists(), name

    def test_cli_commands_exist(self, readme):
        from repro.cli import build_parser
        parser = build_parser()
        sub = next(a for a in parser._actions
                   if hasattr(a, "choices") and a.choices)
        for command in re.findall(r"python -m repro (\S+)", readme):
            assert command in sub.choices, command


class TestTutorial:
    @pytest.fixture(scope="class")
    def tutorial(self):
        return (ROOT / "docs" / "TUTORIAL.md").read_text()

    def test_every_code_block_executes(self, tutorial):
        namespace: dict = {}
        blocks = extract_python_blocks(tutorial)
        assert len(blocks) >= 4
        for block in blocks:
            exec(block, namespace)  # noqa: S102 - doc verification

    def test_referenced_examples_exist(self, tutorial):
        for name in re.findall(r"examples/(\w+\.py)", tutorial):
            assert (ROOT / "examples" / name).exists(), name


class TestDesignDoc:
    @pytest.fixture(scope="class")
    def design(self):
        return (ROOT / "DESIGN.md").read_text()

    def test_no_paper_mismatch_flag(self, design):
        # the paper-check sentinel must affirm the match
        assert "matches *Virtualizing FPGAs in the Cloud*" in design

    def test_referenced_modules_import(self, design):
        import importlib
        for dotted in set(re.findall(r"`(repro(?:\.\w+)+)`", design)):
            module_path = dotted
            attr = None
            try:
                importlib.import_module(module_path)
            except ModuleNotFoundError:
                module_path, _, attr = dotted.rpartition(".")
                module = importlib.import_module(module_path)
                assert hasattr(module, attr), dotted

    def test_referenced_benches_exist(self, design):
        for name in set(re.findall(r"`benchmarks/(test_\w+\.py)`",
                                   design)):
            assert (ROOT / "benchmarks" / name).exists(), name
        for name in set(re.findall(r"`(test_\w+\.py)`", design)):
            assert (ROOT / "benchmarks" / name).exists() \
                or (ROOT / "tests" / name).exists(), name


class TestExperimentsDoc:
    @pytest.fixture(scope="class")
    def experiments(self):
        return (ROOT / "EXPERIMENTS.md").read_text()

    def test_referenced_benches_exist(self, experiments):
        for name in set(re.findall(r"`(test_\w+\.py)`", experiments)):
            assert (ROOT / "benchmarks" / name).exists(), name

    def test_headline_numbers_match_results(self, experiments):
        """The committed headline claims match the latest bench run."""
        results = ROOT / "benchmarks" / "results"
        if not (results / "fig9.txt").exists():
            pytest.skip("bench results not generated")
        fig9 = (results / "fig9.txt").read_text()
        claimed = re.search(r"\*\*−(\d+)%\*\* \| `test_fig9",
                            experiments)
        measured = re.search(r"ViTAL vs baseline: -(\d+)%", fig9)
        assert claimed and measured
        assert abs(int(claimed.group(1)) - int(measured.group(1))) <= 3
