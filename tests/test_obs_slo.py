"""SLO rules: parsing, online evaluation, and violation events."""

import pytest

from repro.obs.slo import (DEFAULT_RULES, SLOEngine, SLORule, parse_slo)
from repro.obs.timeline import TimelineAggregator
from repro.obs.tracer import Tracer


def make_bound(rules, interval=10.0):
    """A timeline + engine + retaining tracer, wired like run_experiment."""
    tracer = Tracer()
    timeline = TimelineAggregator(interval_s=interval, capacity_blocks=40,
                                  num_boards=4, board_capacity=10)
    tracer.add_sink(timeline.on_record)
    engine = SLOEngine(rules)
    engine.bind(timeline, tracer)
    return tracer, timeline, engine


class TestParse:
    def test_basic_forms(self):
        rule = parse_slo("p99_response_s < 40")
        assert rule == SLORule("p99_response_s", "<", 40.0)
        assert parse_slo("goodput >= 0.9").op == ">="
        assert parse_slo("queue_depth <= 5").threshold == 5.0

    def test_window_suffix(self):
        rule = parse_slo("fragmentation < 0.8 @ 60")
        assert rule.window_s == 60.0
        assert str(rule) == "fragmentation < 0.8 @ 60"

    def test_roundtrips_through_str(self):
        for spec in ("utilization > 0.25", "mttr_s < 30 @ 120"):
            assert str(parse_slo(str(parse_slo(spec)))) == str(
                parse_slo(spec))

    def test_rule_passthrough(self):
        rule = SLORule("goodput", ">", 0.5)
        assert parse_slo(rule) is rule

    def test_errors(self):
        with pytest.raises(ValueError, match="cannot parse"):
            parse_slo("nonsense")
        with pytest.raises(ValueError, match="unknown SLO metric"):
            parse_slo("no_such_metric < 1")
        with pytest.raises(ValueError, match="window must be positive"):
            parse_slo("goodput > 0.5 @ 0")
        with pytest.raises(ValueError, match="unknown SLO operator"):
            SLORule("goodput", "==", 0.5)

    def test_defaults(self):
        engine = SLOEngine()
        assert [str(r) for r in engine.rules] == list(DEFAULT_RULES)


class TestGaugeRules:
    def test_violation_and_recovery_events(self):
        tracer, timeline, engine = make_bound(["failed_boards < 1"])
        tracer.event("ctrl.board_fail", t=5.0, board=2)
        tracer.event("ctrl.board_repair", t=25.0, board=2)
        timeline.finish(25.0)
        engine.finalize(25.0)
        events = {(e["name"], e["t"]) for e in tracer.entries()
                  if e["name"].startswith("slo.")}
        assert ("slo.violation", 10.0) in events
        assert ("slo.recovered", 30.0) in events
        (state,) = engine.report()
        assert state["violations"] == 1
        assert state["recovered"] == 1
        assert state["violated_s"] == pytest.approx(20.0)  # buckets 0,1
        assert not state["still_violated"]
        assert engine.all_recovered()

    def test_violation_reason_is_machine_readable(self):
        tracer, timeline, engine = make_bound(["failed_boards < 1"])
        tracer.event("ctrl.board_fail", t=5.0, board=0)
        timeline.finish(5.0)
        (event,) = [e for e in tracer.entries()
                    if e["name"] == "slo.violation"]
        assert event["fields"]["metric"] == "failed_boards"
        assert event["fields"]["op"] == "<"
        assert event["fields"]["threshold"] == 1.0
        assert event["fields"]["value"] == 1.0
        assert event["fields"]["reason"] == \
            "failed_boards=1 violates < 1"
        assert not engine.all_recovered()

    def test_windowed_gauge_averages_trailing_buckets(self):
        # queue holds 2 for one bucket then 0: the 30s-window mean decays
        tracer, timeline, engine = make_bound(
            ["queue_depth <= 0.5 @ 30"])
        tracer.event("sim.arrival", t=1.0, request=1)
        tracer.event("sim.arrival", t=2.0, request=2)
        tracer.event("sim.deploy", t=12.0, request=1)
        tracer.event("sim.deploy", t=13.0, request=2)
        timeline.finish(45.0)
        # bucket means over @30: [2], [2,0], [2,0,0], [0,0,0]
        assert [e["name"] for e in tracer.entries()
                if e["name"].startswith("slo.")] == [
            "slo.violation", "slo.recovered"]
        (state,) = engine.report()
        assert state["violated_s"] == pytest.approx(30.0)

    def test_idle_cluster_trips_a_utilization_floor(self):
        _, timeline, engine = make_bound(["utilization > 0.9"])
        timeline.finish(25.0)
        (state,) = engine.report()
        assert state["last_value"] == 0.0
        assert state["violations"] == 1  # one episode, from bucket 0
        assert state["still_violated"]


class TestDistributionRules:
    def test_percentile_response_rule(self):
        tracer, timeline, engine = make_bound(["p50_response_s < 5"])
        for i, resp in enumerate((1.0, 2.0, 100.0)):
            tracer.event("sim.complete", t=3.0 + i, request=i,
                         response_s=resp, service_s=1.0)
        timeline.finish(3.0)
        (state,) = engine.report()
        assert state["last_value"] == 2.0  # nearest-rank median
        assert state["violations"] == 0

    def test_goodput_counts_useful_vs_lost(self):
        tracer, timeline, engine = make_bound(["goodput > 0.5"])
        tracer.event("sim.complete", t=1.0, request=1, response_s=2.0,
                     service_s=30.0)
        tracer.event("sim.evict", t=2.0, request=2, reason="requeued",
                     progress_lost_s=90.0)
        timeline.finish(2.0)
        (state,) = engine.report()
        assert state["last_value"] == pytest.approx(30.0 / 120.0)
        assert state["violations"] == 1

    def test_goodput_none_before_any_service(self):
        _, timeline, engine = make_bound(["goodput > 0.5"])
        timeline.finish(15.0)
        (state,) = engine.report()
        assert state["last_value"] is None
        assert state["violations"] == 0

    def test_mttr_requeue_matches_collector_accounting(self):
        # recovery = redeploy_t + reconfig_s - evicted_t
        tracer, timeline, engine = make_bound(["mttr_s < 10"])
        tracer.event("sim.evict", t=4.0, request=7, reason="requeued",
                     progress_lost_s=1.0)
        tracer.event("sim.deploy", t=15.0, request=7, reconfig_s=2.0)
        timeline.finish(15.0)
        (state,) = engine.report()
        assert state["last_value"] == pytest.approx(15.0 + 2.0 - 4.0)
        assert state["violations"] == 1

    def test_mttr_migration_uses_recovery_field(self):
        tracer, timeline, engine = make_bound(["mttr_s < 10"])
        tracer.event("sim.evict", t=4.0, request=7, reason="migrated",
                     recovery_s=3.0)
        timeline.finish(4.0)
        (state,) = engine.report()
        assert state["last_value"] == pytest.approx(3.0)
        assert state["violations"] == 0


class TestEngineLifecycle:
    def test_finalized_engine_ignores_later_events(self):
        tracer, timeline, engine = make_bound(["p50_response_s < 5"])
        tracer.event("sim.complete", t=1.0, request=1, response_s=2.0)
        timeline.finish(1.0)
        engine.finalize(1.0)
        tracer.event("sim.complete", t=2.0, request=2, response_s=99.0)
        assert engine._responses == [(1.0, 2.0)]

    def test_slo_events_never_feed_back(self):
        # the violation event itself must not re-enter either consumer
        tracer, timeline, engine = make_bound(["failed_boards < 1"])
        tracer.event("ctrl.board_fail", t=5.0, board=0)
        timeline.finish(200.0)
        violations = [e for e in tracer.entries()
                      if e["name"] == "slo.violation"]
        assert len(violations) == 1  # one episode, not one per bucket

    def test_totals(self):
        tracer, timeline, engine = make_bound(
            ["failed_boards < 1", "fragmentation < 0.95"])
        tracer.event("ctrl.board_fail", t=5.0, board=1)
        tracer.event("ctrl.board_repair", t=15.0, board=1)
        timeline.finish(15.0)
        assert engine.total_violations() == 1
        assert engine.total_recovered() == 1
        assert engine.total_violated_s() == pytest.approx(10.0)

    def test_observe_replays_exported_entries(self):
        engine = SLOEngine(["p99_response_s < 5"])
        engine.observe({"kind": "event", "name": "sim.complete",
                        "t": 1.0, "fields": {"response_s": 2.0}})
        assert engine._responses == [(1.0, 2.0)]
