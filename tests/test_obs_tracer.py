"""Unit tests for the structured event tracer."""

import json

import pytest

from repro.obs import NULL_TRACER, Tracer


class TestEvents:
    def test_event_records_fields(self):
        tracer = Tracer()
        tracer.event("ctrl.deploy", t=3.0, request=7, reason="placed")
        [entry] = list(tracer.entries())
        assert entry["kind"] == "event"
        assert entry["name"] == "ctrl.deploy"
        assert entry["t"] == 3.0
        assert entry["fields"] == {"reason": "placed", "request": 7}
        assert "duration_s" not in entry

    def test_event_defaults_to_now(self):
        tracer = Tracer()
        tracer.now = 12.5
        tracer.event("tick")
        [entry] = list(tracer.entries())
        assert entry["t"] == 12.5

    def test_sequence_numbers_are_ordered(self):
        tracer = Tracer()
        for i in range(5):
            tracer.event("e", t=float(i))
        assert [e["seq"] for e in tracer.entries()] == [0, 1, 2, 3, 4]

    def test_sets_and_tuples_export_deterministically(self):
        tracer = Tracer()
        tracer.event("e", t=0.0, boards={3, 1, 2}, pair=(9, 8))
        [entry] = list(tracer.entries())
        assert entry["fields"]["boards"] == [1, 2, 3]
        assert entry["fields"]["pair"] == [9, 8]


class TestSpans:
    def test_span_duration(self):
        tracer = Tracer()
        span = tracer.span("compile.synthesis", t=10.0, app="x")
        span.end(t=25.0, cost=1.5)
        [entry] = list(tracer.entries())
        assert entry["kind"] == "span"
        assert entry["duration_s"] == 15.0
        assert entry["fields"] == {"app": "x", "cost": 1.5}

    def test_span_end_uses_now(self):
        tracer = Tracer()
        span = tracer.span("s", t=1.0)
        tracer.now = 4.0
        span.end()
        [entry] = list(tracer.entries())
        assert entry["duration_s"] == 3.0

    def test_span_duration_never_negative(self):
        tracer = Tracer()
        tracer.span("s", t=5.0).end(t=2.0)
        [entry] = list(tracer.entries())
        assert entry["duration_s"] == 0.0

    def test_double_end_raises(self):
        tracer = Tracer()
        span = tracer.span("s", t=0.0)
        span.end(t=1.0)
        with pytest.raises(RuntimeError, match="already ended"):
            span.end(t=2.0)

    def test_context_manager(self):
        tracer = Tracer()
        with tracer.span("s", t=0.0):
            tracer.now = 2.0
        [entry] = list(tracer.entries())
        assert entry["duration_s"] == 2.0


class TestDisabled:
    def test_disabled_tracer_is_falsy(self):
        assert not Tracer(enabled=False)
        assert not NULL_TRACER
        assert Tracer()

    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.event("e", t=0.0)
        tracer.span("s", t=0.0).end(t=1.0)
        assert len(tracer) == 0
        assert tracer.to_jsonl() == ""

    def test_disabled_span_is_shared_noop(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("a")
        with span:
            span.end()  # double end is fine on the null span
        assert list(tracer.entries()) == []


class TestExport:
    def test_jsonl_is_byte_stable(self):
        def build():
            tracer = Tracer()
            tracer.event("a", t=1.0, z=1, a=2)
            tracer.span("b", t=2.0, k="v").end(t=3.0)
            return tracer.to_jsonl()
        assert build() == build()

    def test_jsonl_lines_parse(self):
        tracer = Tracer()
        tracer.event("a", t=1.0, x=1)
        tracer.event("b", t=2.0)
        lines = tracer.to_jsonl().splitlines()
        assert len(lines) == 2
        for line in lines:
            parsed = json.loads(line)
            assert {"seq", "t", "kind", "name"} <= parsed.keys()

    def test_dump_returns_count_and_writes(self, tmp_path):
        tracer = Tracer()
        tracer.event("a", t=0.0)
        tracer.event("b", t=1.0)
        path = tmp_path / "trace.jsonl"
        assert tracer.dump(path) == 2
        assert path.read_text().endswith("\n")
        assert len(path.read_text().splitlines()) == 2

    def test_dump_empty_trace(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert Tracer().dump(path) == 0
        assert path.read_text() == ""

    def test_clear(self):
        tracer = Tracer()
        tracer.event("a", t=0.0)
        tracer.clear()
        assert len(tracer) == 0
