"""Tests for workload-set generation (Table 3) and metrics records."""

import math

import pytest

from repro.sim.metrics import (
    MetricsCollector,
    RequestRecord,
    jain_fairness,
    per_size_response,
)
from repro.sim.workload import COMPOSITIONS, WorkloadGenerator


class TestCompositions:
    def test_ten_sets(self):
        assert sorted(COMPOSITIONS) == list(range(1, 11))

    def test_shares_sum_to_one(self):
        for idx, shares in COMPOSITIONS.items():
            assert sum(shares) == pytest.approx(1.0), idx

    def test_pure_sets(self):
        assert COMPOSITIONS[1] == (1.0, 0.0, 0.0)
        assert COMPOSITIONS[3] == (0.0, 0.0, 1.0)


class TestGenerator:
    def test_respects_composition(self):
        requests = WorkloadGenerator(seed=1).generate(
            1, num_requests=50)
        assert all(r.spec.size.value == "S" for r in requests)

    def test_mixed_composition_rough_shares(self):
        requests = WorkloadGenerator(seed=1).generate(
            10, num_requests=400)
        small = sum(1 for r in requests if r.spec.size.value == "S")
        assert 0.5 < small / 400 < 0.7  # 60% +- sampling noise

    def test_arrivals_increasing(self):
        requests = WorkloadGenerator(seed=2).generate(5,
                                                      num_requests=30)
        arrivals = [r.arrival_s for r in requests]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] > 0

    def test_mean_interarrival_close_to_target(self):
        requests = WorkloadGenerator(seed=3).generate(
            7, num_requests=800, mean_interarrival_s=4.0)
        mean = requests[-1].arrival_s / len(requests)
        assert mean == pytest.approx(4.0, rel=0.15)

    def test_request_ids_sequential(self):
        requests = WorkloadGenerator().generate(1, num_requests=10)
        assert [r.request_id for r in requests] == list(range(10))

    def test_replicas_differ(self):
        gen = WorkloadGenerator(seed=4)
        a, b = gen.replicas(7, count=2, num_requests=20)
        assert [r.spec.name for r in a] != [r.spec.name for r in b]

    def test_same_replica_deterministic(self):
        gen = WorkloadGenerator(seed=4)
        a = gen.generate(7, num_requests=20, replica=1)
        b = gen.generate(7, num_requests=20, replica=1)
        assert [(r.spec.name, r.arrival_s) for r in a] \
            == [(r.spec.name, r.arrival_s) for r in b]

    def test_unknown_set_rejected(self):
        with pytest.raises(KeyError, match="Table 3"):
            WorkloadGenerator().generate(11)

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            WorkloadGenerator().generate(1, num_requests=0)


class TestMetricsCollector:
    def make_record(self, rid, arrival, deployed, completed):
        r = RequestRecord(request_id=rid, app_name="a", size="S",
                          num_blocks=1, arrival_s=arrival)
        r.deployed_s = deployed
        return r, completed

    def test_summary_basic(self):
        c = MetricsCollector("m", capacity_blocks=10)
        r, done = self.make_record(0, 0.0, 1.0, None)
        r.service_time_s = 8.0
        c.add_request(r)
        c.record_state(0.0, 5, 1, 0)
        c.complete(0, 9.0)
        s = c.summarize()
        assert s.mean_response_s == pytest.approx(9.0)
        assert s.p50_response_s == pytest.approx(9.0)
        assert s.mean_wait_s == pytest.approx(1.0)
        assert s.num_requests == 1
        assert s.makespan_s == pytest.approx(9.0)

    def test_p50_and_peak_queue(self):
        c = MetricsCollector("m", capacity_blocks=10)
        for rid, resp in enumerate([2.0, 4.0, 100.0]):
            r, _ = self.make_record(rid, 0.0, 0.0, None)
            c.add_request(r)
            c.complete(rid, resp)
        c.record_state(0.5, 1, 1, 7)
        s = c.summarize()
        assert s.p50_response_s == pytest.approx(4.0)
        assert s.mean_response_s > s.p50_response_s  # outlier pulls mean
        assert s.peak_queue_len == 7

    def test_unfinished_requests_excluded(self):
        c = MetricsCollector("m", capacity_blocks=10)
        r1, _ = self.make_record(0, 0.0, 0.0, None)
        r2, _ = self.make_record(1, 0.0, math.nan, None)
        c.add_request(r1)
        c.add_request(r2)
        c.complete(0, 4.0)
        assert c.summarize().num_requests == 1

    def test_no_completions_raises(self):
        c = MetricsCollector("m", capacity_blocks=10)
        with pytest.raises(RuntimeError):
            c.summarize()

    def test_multi_fpga_fraction(self):
        c = MetricsCollector("m", capacity_blocks=10)
        for rid, spans in enumerate([True, False, False, True]):
            r, _ = self.make_record(rid, 0.0, 0.0, None)
            r.spans_boards = spans
            c.add_request(r)
            c.complete(rid, 1.0)
        assert c.summarize().multi_fpga_fraction == pytest.approx(0.5)

    def test_per_size_response(self):
        records = []
        for rid, (size, resp) in enumerate(
                [("S", 10.0), ("S", 20.0), ("L", 40.0)]):
            r = RequestRecord(request_id=rid, app_name="a", size=size,
                              num_blocks=1, arrival_s=0.0)
            r.deployed_s = 0.0
            r.completed_s = resp
            records.append(r)
        out = per_size_response(records)
        assert out["S"] == pytest.approx(15.0)
        assert out["L"] == pytest.approx(40.0)

    def test_per_size_skips_unfinished(self):
        r = RequestRecord(request_id=0, app_name="a", size="M",
                          num_blocks=1, arrival_s=0.0)
        assert per_size_response([r]) == {}

    def test_jain_fairness_perfect(self):
        records = []
        for rid in range(4):
            r = RequestRecord(request_id=rid, app_name="a", size="S",
                              num_blocks=1, arrival_s=0.0)
            r.deployed_s = 0.0
            r.completed_s = 20.0
            r.service_time_s = 10.0
            records.append(r)
        assert jain_fairness(records) == pytest.approx(1.0)

    def test_jain_fairness_skewed(self):
        records = []
        for rid, resp in enumerate([10.0, 10.0, 10.0, 100.0]):
            r = RequestRecord(request_id=rid, app_name="a", size="S",
                              num_blocks=1, arrival_s=0.0)
            r.deployed_s = 0.0
            r.completed_s = resp
            r.service_time_s = 10.0
            records.append(r)
        assert jain_fairness(records) < 0.5

    def test_jain_fairness_empty(self):
        assert jain_fairness([]) == 1.0

    def test_normalized_response(self):
        c1 = MetricsCollector("a", 10)
        r, _ = self.make_record(0, 0.0, 0.0, None)
        c1.add_request(r)
        c1.complete(0, 10.0)
        c2 = MetricsCollector("b", 10)
        r2, _ = self.make_record(0, 0.0, 0.0, None)
        c2.add_request(r2)
        c2.complete(0, 5.0)
        assert c2.summarize().normalized_response(c1.summarize()) \
            == pytest.approx(0.5)
