"""Partition planning on the second catalog device (VU13P).

The planner's constraints are architecture-generic; this suite confirms
the DSE behaves sensibly on a device with a different die count (4),
clock-region grid (4 rows/die) and column mix than the paper's XCVU37P.
"""

import pytest

from repro.fabric.devices import make_vu13p
from repro.fabric.partition import PartitionPlanner


@pytest.fixture(scope="module")
def vu13p_partition():
    return PartitionPlanner(make_vu13p()).plan()


class TestVU13PPlanning:
    def test_plan_is_feasible(self, vu13p_partition):
        vu13p_partition.validate()
        assert vu13p_partition.reserved_fraction() < 0.10

    def test_blocks_identical(self, vu13p_partition):
        assert len({b.footprint
                    for b in vu13p_partition.blocks}) == 1

    def test_blocks_per_die_divides_clock_rows(self, vu13p_partition):
        device = vu13p_partition.device
        per_die = vu13p_partition.blocks_per_die
        height = vu13p_partition.blocks[0].height_clock_regions
        assert per_die * height <= device.dies[0].clock_region_rows

    def test_footprint_differs_from_vu37p(self, vu13p_partition,
                                          partition):
        assert vu13p_partition.blocks[0].footprint \
            != partition.blocks[0].footprint

    def test_blocks_bigger_than_vu37p_or_more_numerous(
            self, vu13p_partition, partition):
        """A larger device yields more aggregate user capacity."""
        assert vu13p_partition.user_resources().total_cost() \
            > partition.user_resources().total_cost()

    def test_min_blocks_respected(self, vu13p_partition):
        assert vu13p_partition.num_blocks >= 8

    def test_four_dies_spanned(self, vu13p_partition):
        assert {b.die_index for b in vu13p_partition.blocks} \
            == {0, 1, 2, 3}
