"""Failure domain maps and correlated/gray schedule generators.

Acceptance criteria under test:
- the map validates its own topology (no board in two racks, no rack in
  two power zones, no unknown rack in a zone) and is falsy when empty;
- correlated outages take *every* board of the rack down at the same
  instant, cascade only to power-zone siblings, and are a pure function
  of the seed;
- gray faults pair every degraded/flaky window with its restore inside
  the horizon;
- an empty domain map generates empty schedules, keeping the fault
  machinery entirely dormant.
"""

from __future__ import annotations

import pytest

from repro.faults import (
    BoardDown,
    BoardUp,
    FailureDomainMap,
    IcapDegraded,
    IcapRestored,
    LinkFlaky,
    LinkStable,
    correlated_outages,
    gray_faults,
)


class TestDomainMap:
    def test_grid_layout(self):
        domains = FailureDomainMap.grid(8, boards_per_rack=4,
                                        racks_per_zone=2)
        assert domains.racks == {"rack0": (0, 1, 2, 3),
                                 "rack1": (4, 5, 6, 7)}
        assert domains.power_zones == {"zone0": ("rack0", "rack1")}
        assert domains.rack_of(5) == "rack1"
        assert domains.zone_of("rack0") == "zone0"
        assert domains.boards() == tuple(range(8))

    def test_correlated_racks_share_the_zone(self):
        domains = FailureDomainMap.grid(16, boards_per_rack=4,
                                        racks_per_zone=2)
        assert domains.correlated_racks("rack0") == ("rack1",)
        assert domains.correlated_racks("rack2") == ("rack3",)
        # different zone => not correlated
        assert "rack2" not in domains.correlated_racks("rack0")

    def test_empty_map_is_falsy(self):
        assert not FailureDomainMap.empty()
        assert FailureDomainMap.grid(4)

    def test_board_in_two_racks_rejected(self):
        with pytest.raises(ValueError, match="belongs to both"):
            FailureDomainMap(racks={"a": [0, 1], "b": [1, 2]})

    def test_rack_in_two_zones_rejected(self):
        with pytest.raises(ValueError, match="belongs to both"):
            FailureDomainMap(racks={"a": [0], "b": [1]},
                             power_zones={"z0": ["a"],
                                          "z1": ["a", "b"]})

    def test_zone_naming_unknown_rack_rejected(self):
        with pytest.raises(ValueError, match="unknown rack"):
            FailureDomainMap(racks={"a": [0]},
                             power_zones={"z": ["a", "ghost"]})

    def test_validate_for_rejects_out_of_range(self):
        domains = FailureDomainMap.grid(8)
        domains.validate_for(8)
        with pytest.raises(ValueError, match="board"):
            domains.validate_for(4)

    def test_rack_of_unknown_board_is_none(self):
        assert FailureDomainMap.grid(4).rack_of(99) is None


class TestCorrelatedOutages:
    DOMAINS = FailureDomainMap.grid(8, boards_per_rack=4,
                                    racks_per_zone=2)

    def test_whole_rack_goes_down_together(self):
        schedule = correlated_outages(
            self.DOMAINS, seed=1, horizon_s=600.0, rack_mtbf_s=200.0)
        downs = [e for e in schedule if isinstance(e, BoardDown)]
        assert downs
        by_time: dict[float, set[int]] = {}
        for event in downs:
            by_time.setdefault(event.time_s, set()).add(event.board)
        for boards in by_time.values():
            # the boards failing at one instant are exactly one rack
            racks = {self.DOMAINS.rack_of(b) for b in boards}
            assert len(racks) == 1
            (rack,) = racks
            assert boards == set(self.DOMAINS.boards_in(rack))

    def test_every_down_has_an_up_inside_horizon(self):
        schedule = correlated_outages(
            self.DOMAINS, seed=2, horizon_s=500.0, rack_mtbf_s=150.0,
            repair_stagger_s=3.0)
        down = [e.board for e in schedule if isinstance(e, BoardDown)]
        up = [e.board for e in schedule if isinstance(e, BoardUp)]
        assert sorted(down) == sorted(up)
        assert all(e.time_s <= 500.0 for e in schedule)

    def test_same_seed_same_schedule(self):
        a = correlated_outages(self.DOMAINS, seed=7, horizon_s=600.0,
                               rack_mtbf_s=120.0,
                               cascade_probability=0.5)
        b = correlated_outages(self.DOMAINS, seed=7, horizon_s=600.0,
                               rack_mtbf_s=120.0,
                               cascade_probability=0.5)
        assert a.events == b.events

    def test_different_seed_different_schedule(self):
        a = correlated_outages(self.DOMAINS, seed=7, horizon_s=600.0,
                               rack_mtbf_s=120.0)
        b = correlated_outages(self.DOMAINS, seed=8, horizon_s=600.0,
                               rack_mtbf_s=120.0)
        assert a.events != b.events

    def test_certain_cascade_spreads_to_sibling(self):
        schedule = correlated_outages(
            self.DOMAINS, seed=3, horizon_s=400.0, rack_mtbf_s=300.0,
            cascade_probability=1.0, cascade_delay_s=5.0)
        downs = [e for e in schedule if isinstance(e, BoardDown)]
        racks_hit = {self.DOMAINS.rack_of(e.board) for e in downs}
        # with p=1 every outage drags its zone sibling down too
        assert racks_hit == {"rack0", "rack1"}

    def test_zero_cascade_never_spreads(self):
        schedule = correlated_outages(
            self.DOMAINS, seed=3, horizon_s=400.0,
            rack_mtbf_s=10_000.0, cascade_probability=0.0)
        # astronomically long MTBF: no outages at all, and certainly
        # no cascades
        assert len(schedule) == 0

    def test_empty_map_yields_empty_schedule(self):
        schedule = correlated_outages(
            FailureDomainMap.empty(), seed=1, horizon_s=100.0,
            rack_mtbf_s=10.0)
        assert not schedule

    def test_bad_rates_rejected(self):
        with pytest.raises(ValueError):
            correlated_outages(self.DOMAINS, seed=0, horizon_s=100.0,
                               rack_mtbf_s=0.0)
        with pytest.raises(ValueError):
            correlated_outages(self.DOMAINS, seed=0, horizon_s=100.0,
                               rack_mtbf_s=10.0, rack_mttr_s=-1.0)
        with pytest.raises(ValueError):
            correlated_outages(self.DOMAINS, seed=0, horizon_s=100.0,
                               rack_mtbf_s=10.0,
                               cascade_probability=1.5)


class TestGrayFaults:
    DOMAINS = FailureDomainMap.grid(8, boards_per_rack=4)

    def test_icap_windows_pair_and_restore(self):
        schedule = gray_faults(self.DOMAINS, seed=4, horizon_s=400.0,
                               icap_mtbf_s=100.0, icap_mttr_s=50.0,
                               icap_latency_multiplier=6.0)
        degraded = [e for e in schedule
                    if isinstance(e, IcapDegraded)]
        restored = [e for e in schedule
                    if isinstance(e, IcapRestored)]
        assert degraded
        assert sorted(e.board for e in degraded) \
            == sorted(e.board for e in restored)
        assert all(e.latency_multiplier == 6.0 for e in degraded)

    def test_flaky_group_flaps_together(self):
        schedule = gray_faults(self.DOMAINS, seed=5, horizon_s=400.0,
                               flaky_mtbf_s=100.0, flaky_mttr_s=50.0,
                               drop_probability=0.25)
        flaky = [e for e in schedule if isinstance(e, LinkFlaky)]
        stable = [e for e in schedule if isinstance(e, LinkStable)]
        assert flaky and len(flaky) == len(stable)
        by_time: dict[float, set[int]] = {}
        for event in flaky:
            by_time.setdefault(event.time_s, set()).add(event.segment)
        groups = {frozenset(s)
                  for s in self.DOMAINS.ring_segments.values()}
        for segments in by_time.values():
            assert frozenset(segments) in groups

    def test_same_seed_same_schedule(self):
        kwargs = dict(seed=9, horizon_s=300.0, icap_mtbf_s=80.0,
                      flaky_mtbf_s=90.0)
        a = gray_faults(self.DOMAINS, **kwargs)
        b = gray_faults(self.DOMAINS, **kwargs)
        assert a.events == b.events

    def test_no_rates_no_events(self):
        assert not gray_faults(self.DOMAINS, seed=1, horizon_s=100.0)

    def test_empty_map_yields_empty_schedule(self):
        assert not gray_faults(FailureDomainMap.empty(), seed=1,
                               horizon_s=100.0, icap_mtbf_s=10.0,
                               flaky_mtbf_s=10.0)

    def test_bad_rates_rejected(self):
        with pytest.raises(ValueError, match="icap_mtbf_s"):
            gray_faults(self.DOMAINS, seed=0, horizon_s=100.0,
                        icap_mtbf_s=-5.0)
        with pytest.raises(ValueError, match="flaky_mttr_s"):
            gray_faults(self.DOMAINS, seed=0, horizon_s=100.0,
                        flaky_mtbf_s=10.0, flaky_mttr_s=0.0)
