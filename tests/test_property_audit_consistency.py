"""Property-style consistency check: the audit log never lies.

A randomized operation stream (deploys, releases, board failures and
repairs) is replayed against a fresh controller; after every step the
log must re-derive exactly the controller's live state, and the
resource database must never double-book a block.  DRAM is deliberately
undersized so some deploys die mid-finalize with a MemoryError -- the
rollback path must leave no trace in either the log or the database.
"""

from __future__ import annotations

import random

import pytest

from repro.peripherals.dram import VirtualMemory
from repro.runtime.audit import AuditEvent
from repro.runtime.controller import DRAM_BYTES_PER_BLOCK, \
    SystemController
from repro.runtime.isolation import verify_isolation

STEPS = 120


def _check_consistency(controller: SystemController) -> None:
    # 1. the log's notion of "live" is exactly the controller's
    assert (controller.audit.live_requests()
            == set(controller.deployments.keys()))
    # 2. no double-booked blocks: every allocated block belongs to
    #    exactly one live deployment, and counts add up
    owners: dict[tuple, int] = {}
    for request_id, deployment in controller.deployments.items():
        for address in deployment.placement.addresses:
            assert address not in owners, \
                f"block {address} booked twice"
            owners[address] = request_id
            assert controller.resource_db.owner_of(address) \
                == request_id
    assert controller.resource_db.allocated_count() == len(owners)
    # 3. the full isolation invariant (blocks, DRAM, quotas)
    verify_isolation(controller)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_random_operations_keep_log_and_state_consistent(
        cluster, compiled_small, compiled_medium, compiled_large,
        seed):
    rng = random.Random(seed)
    controller = SystemController(cluster)
    # undersize DRAM (4 blocks' worth per 15-block board) so deploys
    # regularly die in _map_memory and must roll back cleanly
    for board_id in list(controller.memories):
        controller.memories[board_id] = VirtualMemory(
            4 * DRAM_BYTES_PER_BLOCK)
    apps = [compiled_small, compiled_medium, compiled_large]

    next_request = 0
    clock = 0.0
    deploys = rejects = evictions = 0
    for _ in range(STEPS):
        clock += rng.random()
        op = rng.random()
        if op < 0.55:  # deploy attempt
            app = rng.choice(apps)
            deployment = controller.try_deploy(
                app, next_request, now=clock)
            if deployment is None:
                rejects += 1
            else:
                deploys += 1
            next_request += 1
        elif op < 0.80:  # release a random live deployment
            if controller.deployments:
                request_id = rng.choice(
                    sorted(controller.deployments))
                controller.release(
                    controller.deployments[request_id], now=clock)
        elif op < 0.90:  # fail a random healthy board
            healthy = controller.healthy_boards()
            if len(healthy) > 1:  # keep some capacity alive
                evictions += len(controller.fail_board(
                    rng.choice(healthy), now=clock))
        else:  # repair a random failed board
            failed = controller.failed_boards()
            if failed:
                controller.repair_board(rng.choice(failed),
                                        now=clock)
        _check_consistency(controller)

    # the stream must actually have exercised the interesting paths
    assert deploys > 0 and rejects > 0
    counts = controller.audit.counts()
    reject_reasons = {e.detail.get("reason") for e in
                      controller.audit.entries()
                      if e.event is AuditEvent.REJECT}
    assert "dram-exhausted" in reject_reasons, \
        "stream never hit the DRAM rollback path"

    # drain everything and verify the world is empty again
    for request_id in sorted(controller.deployments):
        controller.release(controller.deployments[request_id],
                           now=clock)
    for board_id in controller.failed_boards():
        controller.repair_board(board_id, now=clock)
    _check_consistency(controller)
    assert controller.resource_db.allocated_count() == 0
    assert controller.resource_db.failed_count() == 0
    for memory in controller.memories.values():
        assert memory.used_bytes() == 0
    if evictions:
        assert counts.get(AuditEvent.EVICT, 0) >= 1
