"""Controller hardening: fail-stop boards, eviction, repair, retries.

The invariant under test throughout: a board failure releases every
resource its victims held exactly once (blocks, DRAM segments, demand,
ring flows), and the audit log agrees with the controller's live state
afterwards.
"""

from __future__ import annotations

import pytest

from repro.cluster.board import BoardHealth
from repro.runtime.audit import AuditEvent
from repro.runtime.controller import SystemController
from repro.runtime.isolation import verify_isolation
from repro.runtime.resource_db import BlockState


@pytest.fixture
def controller(cluster) -> SystemController:
    return SystemController(cluster)


class TestFailBoard:
    def test_unknown_board_raises(self, controller):
        with pytest.raises(KeyError):
            controller.fail_board(99)

    def test_fail_evicts_local_deployments(self, controller,
                                           compiled_small):
        d = controller.try_deploy(compiled_small, 1, now=0.0)
        board = d.placement.boards[0]
        victims = controller.fail_board(board, now=1.0)
        assert [v.request_id for v in victims] == [1]
        assert controller.deployments == {}
        assert controller.board_health[board] is BoardHealth.FAILED
        assert controller.resource_db.allocated_count() == 0
        assert controller.audit.live_requests() == set()

    def test_fail_is_idempotent(self, controller, compiled_small):
        d = controller.try_deploy(compiled_small, 1, now=0.0)
        board = d.placement.boards[0]
        assert len(controller.fail_board(board)) == 1
        assert controller.fail_board(board) == []

    def test_unrelated_deployments_survive(self, controller,
                                           compiled_small):
        d1 = controller.try_deploy(compiled_small, 1, now=0.0)
        board = d1.placement.boards[0]
        survivor_board = next(b for b in controller.board_health
                              if b != board)
        # force the second deployment onto a different board by failing
        # everything else is too blunt; instead deploy then check
        d2 = None
        rid = 2
        while d2 is None or d2.placement.boards[0] == board:
            d2 = controller.try_deploy(compiled_small, rid, now=0.0)
            assert d2 is not None, "cluster filled before leaving board"
            if d2.placement.boards[0] == board:
                rid += 1
                d2 = None
        controller.fail_board(board)
        assert d2.request_id in controller.deployments
        assert survivor_board in controller.healthy_boards()

    def test_spanning_deployment_fully_released(self, controller,
                                                compiled_large,
                                                compiled_small):
        # fill boards until an app spans, then fail one of its boards
        spanning = None
        rid = 0
        while spanning is None:
            d = controller.try_deploy(compiled_large, rid, now=0.0)
            if d is None:
                break
            if d.placement.spans_boards:
                spanning = d
            rid += 1
        assert spanning is not None, "never produced a spanning app"
        boards = sorted(spanning.placement.boards)
        victims = controller.fail_board(boards[0])
        assert spanning in victims
        # its blocks on the *healthy* boards are free again, not leaked
        for address in spanning.placement.addresses:
            state = controller.resource_db.state_of(address)
            expected = (BlockState.FAILED if address[0] == boards[0]
                        else BlockState.FREE)
            assert state is expected
        # and its ring flow is gone
        assert (controller._flow_key(spanning.request_id)
                not in controller.cluster.network._flows)

    def test_failed_board_rejects_new_deployments(self, controller,
                                                  compiled_small):
        controller.fail_board(0)
        for rid in range(64):
            d = controller.try_deploy(compiled_small, rid, now=0.0)
            if d is None:
                break
            assert 0 not in d.placement.boards

    def test_dram_wiped_on_failure(self, controller, compiled_small):
        d = controller.try_deploy(compiled_small, 1, now=0.0)
        board = d.placement.boards[0]
        assert controller.memories[board].used_bytes() > 0
        controller.fail_board(board)
        assert controller.memories[board].used_bytes() == 0

    def test_audit_trail_of_a_failure(self, controller, compiled_small):
        d = controller.try_deploy(compiled_small, 1, now=0.0)
        controller.fail_board(d.placement.boards[0], now=2.0)
        counts = controller.audit.counts()
        assert counts[AuditEvent.FAIL] == 1
        assert counts[AuditEvent.EVICT] == 1
        evict = [e for e in controller.audit.entries()
                 if e.event is AuditEvent.EVICT][0]
        assert evict.request_id == 1
        assert "failed" in evict.detail["reason"]

    def test_isolation_holds_after_failure(self, controller,
                                           compiled_small,
                                           compiled_medium):
        controller.try_deploy(compiled_small, 1, now=0.0)
        controller.try_deploy(compiled_medium, 2, now=0.0)
        controller.fail_board(0)
        verify_isolation(controller)


class TestRepairBoard:
    def test_repair_restores_capacity(self, controller, compiled_small):
        controller.fail_board(0)
        assert 0 in controller.failed_boards()
        controller.repair_board(0)
        assert 0 in controller.healthy_boards()
        assert controller.resource_db.failed_count() == 0

    def test_repair_healthy_board_is_noop(self, controller):
        before = len(controller.audit)
        controller.repair_board(0)
        assert len(controller.audit) == before

    def test_repaired_board_accepts_deployments_again(
            self, controller, compiled_small):
        for board in list(controller.board_health):
            if board != 0:
                controller.fail_board(board)
        controller.fail_board(0)
        assert controller.try_deploy(compiled_small, 1, 0.0) is None
        controller.repair_board(0)
        d = controller.try_deploy(compiled_small, 1, now=0.0)
        assert d is not None and d.placement.boards == [0]


class TestRecovery:
    def test_redeploy_evicted_relocates(self, controller,
                                        compiled_small):
        d = controller.try_deploy(compiled_small, 1, now=0.0)
        (victim,) = controller.fail_board(d.placement.boards[0],
                                          now=1.0)
        replacement = controller.redeploy_evicted(victim, now=1.0)
        assert replacement is not None
        assert replacement.request_id == 1
        assert (replacement.placement.boards
                != victim.placement.boards)
        counts = controller.audit.counts()
        assert counts[AuditEvent.RECOVER] == 1
        verify_isolation(controller)

    def test_redeploy_fails_gracefully_when_full(self, controller,
                                                 compiled_small):
        d = controller.try_deploy(compiled_small, 1, now=0.0)
        for board in list(controller.board_health):
            controller.fail_board(board)
        replacement = controller.redeploy_evicted(d, now=1.0)
        assert replacement is None
        assert AuditEvent.RECOVER not in controller.audit.counts()


class TestReconfigTransientFaults:
    def test_armed_fault_inflates_reconfig_time(self, controller,
                                                compiled_small):
        clean = controller.try_deploy(compiled_small, 1, now=0.0)
        board = clean.placement.boards[0]
        controller.release(clean, now=0.0)
        controller.inject_reconfig_fault(board, attempts=2)
        # exhaust other boards so the next deploy lands on `board`
        for other in list(controller.board_health):
            if other != board:
                controller.fail_board(other)
        retried = controller.try_deploy(compiled_small, 2, now=10.0)
        assert retried.placement.boards == [board]
        # 2 failed attempts: ~3x the programming time plus backoff
        assert retried.reconfig_time_s > 2.9 * clean.reconfig_time_s
        retries = [e for e in controller.audit.entries()
                   if e.event is AuditEvent.RETRY]
        assert [e.detail["attempt"] for e in retries] == [1, 2]
        assert retries[0].detail["board"] == board

    def test_armed_faults_are_consumed(self, controller,
                                       compiled_small):
        controller.inject_reconfig_fault(0, attempts=1)
        for other in list(controller.board_health):
            if other != 0:
                controller.fail_board(other)
        first = controller.try_deploy(compiled_small, 1, now=0.0)
        controller.release(first, now=0.0)
        second = controller.try_deploy(compiled_small, 2, now=100.0)
        assert second.reconfig_time_s < first.reconfig_time_s

    def test_retries_are_bounded(self, controller, compiled_small):
        controller.reconfig_max_retries = 3
        controller.inject_reconfig_fault(0, attempts=1000)
        for other in list(controller.board_health):
            if other != 0:
                controller.fail_board(other)
        d = controller.try_deploy(compiled_small, 1, now=0.0)
        assert d is not None
        retries = [e for e in controller.audit.entries()
                   if e.event is AuditEvent.RETRY]
        assert len(retries) == 3

    def test_board_failure_clears_armed_faults(self, controller):
        controller.inject_reconfig_fault(0, attempts=4)
        controller.fail_board(0)
        assert controller._armed_reconfig_faults == {}

    def test_invalid_arguments(self, controller):
        with pytest.raises(KeyError):
            controller.inject_reconfig_fault(99)
        with pytest.raises(ValueError):
            controller.inject_reconfig_fault(0, attempts=0)


class TestSnapshotFaultState:
    def test_snapshot_carries_config_port_horizon(self, controller,
                                                  compiled_small):
        d = controller.try_deploy(compiled_small, 1, now=5.0)
        board = d.placement.boards[0]
        horizon = controller._config_port_free_at[board]
        assert horizon > 5.0
        restored = SystemController.restore(
            controller.cluster, controller.snapshot(),
            controller.bitstream_db)
        assert restored._config_port_free_at[board] == horizon
        for request_id in list(restored.deployments):
            restored.release(restored.deployments[request_id])

    def test_snapshot_carries_failed_boards(self, controller):
        controller.fail_board(2)
        snap = controller.snapshot()
        assert snap["failed_boards"] == [2]
        restored = SystemController.restore(
            controller.cluster, snap, controller.bitstream_db)
        assert restored.failed_boards() == [2]
        assert restored.resource_db.failed_boards() == {2}

    def test_release_audits_after_teardown(self, controller,
                                           compiled_small,
                                           monkeypatch):
        """Satellite: an exception mid-teardown must not leave a
        RELEASE entry claiming the blocks were freed."""
        d = controller.try_deploy(compiled_small, 1, now=0.0)

        def boom(_deployment):
            raise RuntimeError("teardown failed")

        monkeypatch.setattr(controller, "_teardown", boom)
        with pytest.raises(RuntimeError, match="teardown failed"):
            controller.release(d, now=1.0)
        assert AuditEvent.RELEASE not in controller.audit.counts()
        # the log still claims the request is live -- truthfully so
        assert controller.audit.live_requests() == {1}
