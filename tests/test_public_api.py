"""Public-API surface checks and full-catalog closure tests."""

import pytest

import repro
from repro import (
    ViTALStack,
    custom_kernel,
    make_cluster,
)
from repro.compiler.flow import CompilationFlow
from repro.hls.kernels import REPRESENTATIVE_APPS, benchmark


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_string(self):
        major, *_ = repro.__version__.split(".")
        assert int(major) >= 1

    def test_subpackage_alls_resolve(self):
        import repro.compiler
        import repro.fabric
        import repro.interconnect
        import repro.netlist
        import repro.peripherals
        import repro.runtime
        import repro.sim
        for module in (repro.compiler, repro.fabric,
                       repro.interconnect, repro.netlist,
                       repro.peripherals):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)


class TestRepresentativeAppsRunEndToEnd:
    """The Fig. 1a motivation apps actually run through the stack."""

    def test_every_fig1a_app_deploys(self, cluster):
        stack = ViTALStack(cluster=cluster)
        for app_desc in REPRESENTATIVE_APPS:
            r = app_desc.resources
            spec = custom_kernel(app_desc.name, lut=r.lut, dff=r.dff,
                                 dsp=r.dsp, bram_mb=r.bram_mb,
                                 service_time_s=15.0)
            deployment = stack.deploy(spec)
            assert deployment is not None, app_desc.name
            stack.check_isolation()
            stack.release(deployment)


class TestDetailedPnRSignoff:
    def test_signoff_flow_compiles(self, cluster):
        flow = CompilationFlow(fabric=cluster.partition,
                               verify_with_detailed_pnr=True)
        app = flow.compile(benchmark("cifar10", "M"))
        app.validate()

    def test_signoff_matches_fast_flow_structure(self, cluster):
        fast = CompilationFlow(fabric=cluster.partition)
        slow = CompilationFlow(fabric=cluster.partition,
                               verify_with_detailed_pnr=True)
        spec = benchmark("vgg16", "S")
        a = fast.compile(spec)
        b = slow.compile(spec)
        assert a.num_blocks == b.num_blocks
        assert a.cut_bandwidth_bits == b.cut_bandwidth_bits
