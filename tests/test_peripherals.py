"""Tests for DRAM virtual memory, the access monitor and virtual NIC."""

import pytest
from hypothesis import given, strategies as st

from repro.peripherals.dram import (
    PAGE_BYTES,
    ProtectionError,
    VirtualMemory,
)
from repro.peripherals.ethernet import VirtualNIC
from repro.peripherals.monitor import AccessMonitor

MB = 1 << 20
GB = 1 << 30


class TestVirtualMemory:
    @pytest.fixture()
    def memory(self):
        return VirtualMemory(capacity_bytes=1 * GB)

    def test_allocation_rounds_to_pages(self, memory):
        seg = memory.allocate("a", 1)
        assert seg.length == PAGE_BYTES

    def test_virtual_addresses_start_at_zero(self, memory):
        seg = memory.allocate("a", 10 * MB)
        assert seg.virt_base == 0
        assert memory.translate("a", 0) == seg.phys_base

    def test_second_segment_contiguous_virtually(self, memory):
        memory.allocate("a", 4 * MB)
        seg2 = memory.allocate("a", 4 * MB)
        assert seg2.virt_base == 4 * MB

    def test_translation_offsets(self, memory):
        seg = memory.allocate("a", 8 * MB)
        assert memory.translate("a", 12345) == seg.phys_base + 12345

    def test_out_of_range_faults(self, memory):
        memory.allocate("a", 2 * MB)
        with pytest.raises(ProtectionError):
            memory.translate("a", 2 * MB)

    def test_unknown_tenant_faults(self, memory):
        with pytest.raises(ProtectionError):
            memory.translate("ghost", 0)

    def test_cross_tenant_segments_disjoint(self, memory):
        a = memory.allocate("a", 16 * MB)
        b = memory.allocate("b", 16 * MB)
        assert a.phys_end <= b.phys_base or b.phys_end <= a.phys_base
        memory.check_isolation()

    def test_tenant_cannot_reach_other_tenants_range(self, memory):
        memory.allocate("a", 2 * MB)
        seg_b = memory.allocate("b", 2 * MB)
        # every address "a" can translate lands outside b's range
        for vaddr in (0, 2 * MB - 1):
            paddr = memory.translate("a", vaddr)
            assert not (seg_b.phys_base <= paddr < seg_b.phys_end)

    def test_release_frees_space(self, memory):
        memory.allocate("a", 512 * MB)
        memory.release("a")
        assert memory.free_bytes() == 1 * GB
        memory.allocate("b", 900 * MB)  # fits again

    def test_release_idempotent(self, memory):
        memory.release("never-allocated")

    def test_exhaustion_raises(self, memory):
        memory.allocate("a", 900 * MB)
        with pytest.raises(MemoryError):
            memory.allocate("b", 200 * MB)

    def test_first_fit_reuses_gap(self, memory):
        memory.allocate("a", 100 * MB)
        b = memory.allocate("b", 100 * MB)
        memory.allocate("c", 100 * MB)
        memory.release("b")
        d = memory.allocate("d", 50 * MB)
        assert d.phys_base == b.phys_base

    def test_owner_of_physical(self, memory):
        seg = memory.allocate("a", 2 * MB)
        assert memory.owner_of_physical(seg.phys_base) == "a"
        assert memory.owner_of_physical(seg.phys_end) is None

    def test_invalid_allocation(self, memory):
        with pytest.raises(ValueError):
            memory.allocate("a", 0)

    @given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1,
                    max_size=12))
    def test_isolation_invariant_under_any_sequence(self, tenants):
        memory = VirtualMemory(capacity_bytes=4 * GB)
        for i, tenant in enumerate(tenants):
            if i % 3 == 2:
                memory.release(tenant)
            else:
                memory.allocate(tenant, 32 * MB)
            memory.check_isolation()


class TestAccessMonitor:
    def test_faults_recorded_and_reraised(self):
        monitor = AccessMonitor(VirtualMemory(1 * GB))
        with pytest.raises(ProtectionError):
            monitor.access("intruder", 0)
        assert monitor.fault_count == 1
        assert monitor.faults_of("intruder")[0].vaddr == 0

    def test_successes_counted(self):
        memory = VirtualMemory(1 * GB)
        memory.allocate("a", 2 * MB)
        monitor = AccessMonitor(memory, record_successes=True)
        monitor.access("a", 100)
        assert monitor.access_count == 1 and monitor.fault_count == 0
        assert not monitor.records[0].faulted

    def test_fault_rate(self):
        memory = VirtualMemory(1 * GB)
        memory.allocate("a", 2 * MB)
        monitor = AccessMonitor(memory)
        monitor.access("a", 0)
        with pytest.raises(ProtectionError):
            monitor.access("a", 500 * MB)
        assert monitor.fault_rate() == pytest.approx(0.5)

    def test_bounded_records_keep_counters_exact(self):
        """Regression: with record_successes a long run used to grow
        ``records`` without bound; ``max_records`` caps the ring while
        the counters keep counting every access."""
        memory = VirtualMemory(1 * GB)
        memory.allocate("a", 2 * MB)
        monitor = AccessMonitor(memory, record_successes=True,
                                max_records=3)
        for vaddr in range(10):
            monitor.access("a", vaddr)
        assert monitor.access_count == 10
        assert len(monitor.records) == 3
        assert monitor.dropped_records == 7
        # the ring keeps the newest accesses (oldest evicted first)
        assert [r.vaddr for r in monitor.records] == [7, 8, 9]

    def test_bounded_records_keep_fault_count_exact(self):
        monitor = AccessMonitor(VirtualMemory(1 * GB), max_records=1)
        for _ in range(4):
            with pytest.raises(ProtectionError):
                monitor.access("intruder", 0)
        assert monitor.fault_count == 4
        assert len(monitor.records) == 1
        assert monitor.dropped_records == 3
        assert monitor.fault_rate() == 1.0

    def test_unbounded_is_default(self):
        memory = VirtualMemory(1 * GB)
        memory.allocate("a", 2 * MB)
        monitor = AccessMonitor(memory, record_successes=True)
        for vaddr in range(100):
            monitor.access("a", vaddr)
        assert len(monitor.records) == 100
        assert monitor.dropped_records == 0

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError, match="max_records"):
            AccessMonitor(VirtualMemory(1 * GB), max_records=0)


class TestVirtualNIC:
    def test_weighted_shares(self):
        nic = VirtualNIC(port_bandwidth_gbps=100)
        nic.attach("a", weight=3)
        nic.attach("b", weight=1)
        assert nic.bandwidth_share_gbps("a") == pytest.approx(75)
        assert nic.bandwidth_share_gbps("b") == pytest.approx(25)

    def test_share_grows_after_detach(self):
        nic = VirtualNIC()
        nic.attach("a")
        nic.attach("b")
        nic.detach("b")
        assert nic.bandwidth_share_gbps("a") == pytest.approx(100)

    def test_delivery_and_accounting(self):
        nic = VirtualNIC()
        pa, pb = nic.attach("a"), nic.attach("b")
        nic.send("a", "b", b"hello")
        assert pa.tx_bytes == 5 and pb.rx_bytes == 5
        assert pb.drain() == [b"hello"]
        assert pb.drain() == []

    def test_unknown_destination_dropped_not_misdelivered(self):
        nic = VirtualNIC()
        pa = nic.attach("a")
        nic.send("a", "ghost", b"data")
        assert pa.tx_bytes == 4
        assert pa.drain() == []

    def test_unattached_sender_rejected(self):
        nic = VirtualNIC()
        with pytest.raises(KeyError):
            nic.send("nobody", "a", b"x")

    def test_double_attach_rejected(self):
        nic = VirtualNIC()
        nic.attach("a")
        with pytest.raises(ValueError):
            nic.attach("a")

    def test_transfer_time_scales_inverse_share(self):
        nic = VirtualNIC(port_bandwidth_gbps=100)
        nic.attach("a")
        solo = nic.transfer_time_s("a", 1 << 30)
        nic.attach("b")
        shared = nic.transfer_time_s("a", 1 << 30)
        assert shared == pytest.approx(2 * solo)
