"""Tests for the system controller and isolation guarantees."""

import pytest

from repro.runtime.controller import SystemController
from repro.runtime.isolation import IsolationViolation, verify_isolation
from repro.runtime.policy import SpreadPolicy


@pytest.fixture()
def controller(cluster):
    return SystemController(cluster)


class TestDeployRelease:
    def test_deploy_allocates_blocks(self, controller, compiled_medium):
        d = controller.try_deploy(compiled_medium, 1, now=0.0)
        assert d is not None
        assert controller.busy_blocks() == compiled_medium.num_blocks
        assert controller.resource_db.blocks_of(1) \
            == d.placement.addresses

    def test_release_frees_everything(self, controller,
                                      compiled_medium):
        d = controller.try_deploy(compiled_medium, 1, now=0.0)
        controller.release(d)
        assert controller.busy_blocks() == 0
        assert controller.running() == []
        for memory in controller.memories.values():
            assert memory.tenants() == []

    def test_double_release_rejected(self, controller, compiled_small):
        d = controller.try_deploy(compiled_small, 1, now=0.0)
        controller.release(d)
        with pytest.raises(RuntimeError, match="not deployed"):
            controller.release(d)

    def test_register_makes_lookup_work(self, controller,
                                        compiled_small):
        controller.register(compiled_small)
        assert compiled_small.name in controller.bitstream_db

    def test_returns_none_when_full(self, controller, compiled_large):
        deployed = []
        rid = 0
        while True:
            d = controller.try_deploy(compiled_large, rid, now=0.0)
            if d is None:
                break
            deployed.append(d)
            rid += 1
        assert deployed  # at least some fit
        assert controller.try_deploy(compiled_large, 999, 0.0) is None

    def test_memory_mapped_per_board(self, controller, compiled_large):
        d = controller.try_deploy(compiled_large, 1, now=0.0)
        for board in d.placement.boards:
            assert d.tenant in controller.memories[board].tenants()

    def test_reconfig_time_scales_with_blocks(self, controller,
                                              compiled_small,
                                              compiled_large):
        ds = controller.try_deploy(compiled_small, 1, now=0.0)
        dl = controller.try_deploy(compiled_large, 2, now=0.0)
        assert dl.reconfig_time_s > ds.reconfig_time_s

    def test_partial_reconfig_cheaper_than_full_device(self, controller,
                                                       compiled_small,
                                                       cluster):
        d = controller.try_deploy(compiled_small, 1, now=0.0)
        assert d.reconfig_time_s \
            < cluster.reconfigurer.full_device_time_s()


class TestServiceModel:
    def test_single_board_no_overhead(self, controller,
                                      compiled_medium):
        d = controller.try_deploy(compiled_medium, 1, now=0.0)
        assert d.placement.num_boards == 1
        assert d.comm_slowdown == 1.0
        assert d.latency_overhead_s == 0.0
        assert d.service_time_s \
            == pytest.approx(compiled_medium.service_time_s())

    def test_spanning_overhead_negligible(self, cluster,
                                          compiled_large):
        """Section 5.5: the LI interface overhead is <0.03% of the total
        execution time under the communication-aware policy."""
        controller = SystemController(cluster)
        # fill boards so the large app must span
        filler = []
        rid = 0
        for _ in range(8):
            d = controller.try_deploy(compiled_large, rid, 0.0)
            if d is None:
                break
            filler.append(d)
            rid += 1
        d = None
        while d is None and filler:
            controller.release(filler.pop())
            d = controller.try_deploy(compiled_large, 100, 0.0)
        assert d is not None
        if d.spans_boards:
            assert d.latency_overhead_fraction < 3e-4

    def test_spread_policy_pays_more_overhead(self, cluster,
                                              compiled_large):
        aware = SystemController(cluster)
        spread = SystemController(cluster, policy=SpreadPolicy())
        da = aware.try_deploy(compiled_large, 1, 0.0)
        ds = spread.try_deploy(compiled_large, 1, 0.0)
        assert ds.placement.num_boards > da.placement.num_boards
        assert ds.latency_overhead_s >= da.latency_overhead_s
        aware.release(da)
        spread.release(ds)

    def test_completion_time_composition(self, controller,
                                         compiled_small):
        d = controller.try_deploy(compiled_small, 1, now=10.0)
        assert d.completion_time \
            == pytest.approx(10.0 + d.reconfig_time_s
                             + d.service_time_s)


class TestQuotas:
    def test_quota_blocks_admission(self, controller, compiled_medium):
        controller.set_quota("acme", compiled_medium.num_blocks)
        d1 = controller.try_deploy(compiled_medium, 1, 0.0,
                                   tenant="acme")
        assert d1 is not None
        d2 = controller.try_deploy(compiled_medium, 2, 0.0,
                                   tenant="acme")
        assert d2 is None
        rejected = controller.audit.by_request(2)
        assert rejected[-1].detail["reason"] == "quota-exceeded"

    def test_quota_frees_with_release(self, controller,
                                      compiled_medium):
        controller.set_quota("acme", compiled_medium.num_blocks)
        d1 = controller.try_deploy(compiled_medium, 1, 0.0,
                                   tenant="acme")
        controller.release(d1)
        assert controller.try_deploy(compiled_medium, 2, 0.0,
                                     tenant="acme") is not None

    def test_quota_per_tenant(self, controller, compiled_medium):
        controller.set_quota("acme", 0)
        assert controller.try_deploy(compiled_medium, 1, 0.0,
                                     tenant="acme") is None
        assert controller.try_deploy(compiled_medium, 2, 0.0,
                                     tenant="globex") is not None

    def test_remove_quota(self, controller, compiled_small):
        controller.set_quota("acme", 0)
        controller.remove_quota("acme")
        assert controller.try_deploy(compiled_small, 1, 0.0,
                                     tenant="acme") is not None

    def test_negative_quota_rejected(self, controller):
        with pytest.raises(ValueError):
            controller.set_quota("acme", -1)

    def test_blocks_held_accounting(self, controller, compiled_small,
                                    compiled_medium):
        controller.try_deploy(compiled_small, 1, 0.0, tenant="acme")
        controller.try_deploy(compiled_medium, 2, 0.0, tenant="acme")
        controller.try_deploy(compiled_small, 3, 0.0, tenant="globex")
        assert controller.blocks_held_by("acme") \
            == compiled_small.num_blocks + compiled_medium.num_blocks

    def test_same_tenant_deployments_release_independently(
            self, controller, compiled_small):
        """Regression: releasing one of a tenant's deployments must not
        free the other's DRAM segments or bandwidth demand."""
        d1 = controller.try_deploy(compiled_small, 1, 0.0,
                                   tenant="acme")
        d2 = controller.try_deploy(compiled_small, 2, 0.0,
                                   tenant="acme")
        board2 = d2.placement.boards[0]
        controller.release(d1)
        # d2's memory is still mapped and its demand still attached
        assert "acme" in controller.memories[board2].tenants()
        assert controller.dram_arbiters[board2].total_demand() > 0
        controller.release(d2)
        assert controller.dram_arbiters[board2].total_demand() == 0
        for memory in controller.memories.values():
            assert memory.used_bytes() == 0


class TestIsolation:
    def test_verify_passes_under_load(self, controller, compiled_small,
                                      compiled_medium, compiled_large):
        rid = 0
        for app in (compiled_small, compiled_medium, compiled_large) * 3:
            controller.try_deploy(app, rid, now=0.0)
            rid += 1
        verify_isolation(controller)

    def test_verify_passes_through_churn(self, controller,
                                         compiled_medium):
        live = {}
        for rid in range(20):
            d = controller.try_deploy(compiled_medium, rid, now=0.0)
            if d is not None:
                live[rid] = d
            if rid % 3 == 2 and live:
                _, victim = live.popitem()
                controller.release(victim)
            verify_isolation(controller)

    def test_detects_ghost_allocation(self, controller,
                                      compiled_small):
        controller.try_deploy(compiled_small, 1, now=0.0)
        # corrupt: allocate a block in the DB with no deployment
        controller.resource_db.allocate(999, [(3, 14)])
        with pytest.raises(IsolationViolation, match="ghosts"):
            verify_isolation(controller)

    def test_detects_shared_block(self, controller, compiled_small):
        d1 = controller.try_deploy(compiled_small, 1, now=0.0)
        d2 = controller.try_deploy(compiled_small, 2, now=0.0)
        # corrupt d2's placement to point at d1's block
        vb = 0
        d2.placement.mapping[vb] = d1.placement.mapping[0]
        with pytest.raises(IsolationViolation, match="shared"):
            verify_isolation(controller)
