"""Tests for the Programming Layer and the ViTALStack facade."""

import pytest

from repro import (
    ViTALStack,
    benchmark,
    custom_kernel,
)
from repro.core.programming import VirtualFPGA
from repro.fabric.resources import ResourceVector


@pytest.fixture(scope="module")
def stack(cluster):
    return ViTALStack(cluster=cluster)


class TestCustomKernel:
    def test_roundtrips_service_time(self):
        k = custom_kernel("k", lut=10e3, dff=20e3, dsp=64, bram_mb=2,
                          service_time_s=17.0)
        assert k.service_time_s() == pytest.approx(17.0)

    def test_roundtrips_without_dsp(self):
        k = custom_kernel("k", lut=10e3, dff=20e3, dsp=0, bram_mb=2,
                          service_time_s=9.0)
        assert k.service_time_s() == pytest.approx(9.0)

    def test_rejects_logicless_kernel(self):
        with pytest.raises(ValueError):
            custom_kernel("k", lut=0, dff=0, dsp=1, bram_mb=0)

    def test_rejects_nonpositive_time(self):
        with pytest.raises(ValueError):
            custom_kernel("k", lut=1, dff=1, dsp=0, bram_mb=0,
                          service_time_s=0)


class TestVirtualFPGA:
    def test_admits_normal_kernel(self, cluster):
        vf = VirtualFPGA(pool_capacity=cluster.partition.user_resources()
                         * cluster.num_boards)
        assert vf.admits(benchmark("svhn", "L"))

    def test_rejects_monster_kernel(self):
        vf = VirtualFPGA(pool_capacity=ResourceVector(lut=1000, dff=1000))
        monster = custom_kernel("m", lut=1e9, dff=1e9, dsp=0, bram_mb=0)
        assert not vf.admits(monster)
        with pytest.raises(ValueError, match="aggregated cluster pool"):
            vf.check(monster)

    def test_headroom(self):
        vf = VirtualFPGA(pool_capacity=ResourceVector(lut=1000,
                                                      dff=1000))
        k = custom_kernel("k", lut=100, dff=100, dsp=0, bram_mb=0)
        assert vf.headroom(k) == pytest.approx(10.0)


class TestViTALStack:
    def test_compile_idempotent(self, stack):
        spec = benchmark("vgg16", "S")
        a = stack.compile(spec)
        b = stack.compile(spec)
        assert a is b

    def test_deploy_release_cycle(self, stack):
        d = stack.deploy(benchmark("vgg16", "S"))
        assert d is not None
        assert stack.utilization() > 0
        stack.check_isolation()
        stack.release(d)
        assert len(stack.running()) == 0

    def test_deploy_returns_none_when_full(self, cluster):
        stack = ViTALStack(cluster=cluster)
        spec = benchmark("resnet18", "L")
        live = []
        while (d := stack.deploy(spec)) is not None:
            live.append(d)
        assert live
        for d in live:
            stack.release(d)

    def test_status_snapshot(self, stack):
        status = stack.status()
        assert status["capacity_blocks"] == 60
        assert "utilization" in status

    def test_custom_kernel_end_to_end(self, stack):
        k = custom_kernel("tiny-filter", lut=30e3, dff=40e3, dsp=16,
                          bram_mb=1.5, service_time_s=5.0)
        d = stack.deploy(k)
        assert d is not None
        assert d.service_time_s == pytest.approx(5.0)
        stack.release(d)

    def test_free_blocks_accounting(self, stack):
        before = stack.free_blocks()
        d = stack.deploy(benchmark("vgg16", "S"))
        assert stack.free_blocks() == before - d.num_blocks
        stack.release(d)
        assert stack.free_blocks() == before
