"""Tests for the bandwidth arbiter, ring flow registry and the
controller's contention models."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster.network import RingNetwork
from repro.peripherals.bandwidth import BandwidthArbiter
from repro.runtime.controller import (
    DRAM_DEMAND_GBPS_PER_BLOCK,
    SystemController,
)


class TestBandwidthArbiter:
    def test_undersubscribed_everyone_satisfied(self):
        arb = BandwidthArbiter(100)
        arb.attach("a", 30)
        arb.attach("b", 40)
        assert arb.shares() == {"a": 30, "b": 40}
        assert arb.slowdown_of("a") == 1.0

    def test_oversubscribed_fair_split(self):
        arb = BandwidthArbiter(100)
        arb.attach("a", 80)
        arb.attach("b", 80)
        shares = arb.shares()
        assert shares["a"] == pytest.approx(50)
        assert arb.slowdown_of("a") == pytest.approx(1.6)

    def test_max_min_protects_small_demand(self):
        arb = BandwidthArbiter(100)
        arb.attach("small", 10)
        arb.attach("big", 500)
        shares = arb.shares()
        assert shares["small"] == pytest.approx(10)
        assert shares["big"] == pytest.approx(90)

    def test_zero_demand_never_slowed(self):
        arb = BandwidthArbiter(10)
        arb.attach("idle", 0)
        arb.attach("busy", 100)
        assert arb.slowdown_of("idle") == 1.0

    def test_detach_returns_capacity(self):
        arb = BandwidthArbiter(100)
        arb.attach("a", 80)
        arb.attach("b", 80)
        arb.detach("b")
        assert arb.slowdown_of("a") == 1.0

    def test_double_attach_rejected(self):
        arb = BandwidthArbiter(10)
        arb.attach("a", 1)
        with pytest.raises(ValueError):
            arb.attach("a", 1)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BandwidthArbiter(0)

    def test_oversubscription_flag(self):
        arb = BandwidthArbiter(10)
        arb.attach("a", 5)
        assert not arb.is_oversubscribed()
        arb.attach("b", 6)
        assert arb.is_oversubscribed()

    def test_add_demand_accumulates(self):
        arb = BandwidthArbiter(100)
        arb.add_demand("a", 30)
        arb.add_demand("a", 20)
        assert arb.total_demand() == pytest.approx(50)

    def test_remove_demand_partial(self):
        arb = BandwidthArbiter(100)
        arb.add_demand("a", 30)
        arb.add_demand("a", 20)
        arb.remove_demand("a", 30)
        assert arb.total_demand() == pytest.approx(20)
        arb.remove_demand("a", 20)
        assert "a" not in arb.tenants()

    def test_remove_demand_unknown_tenant_noop(self):
        BandwidthArbiter(10).remove_demand("ghost", 5)

    @given(st.lists(st.floats(min_value=0.1, max_value=50,
                              allow_nan=False),
                    min_size=1, max_size=10))
    def test_add_remove_demand_roundtrip(self, amounts):
        arb = BandwidthArbiter(100)
        for amount in amounts:
            arb.add_demand("t", amount)
        for amount in amounts:
            arb.remove_demand("t", amount)
        assert arb.total_demand() == pytest.approx(0.0, abs=1e-6)

    @given(st.lists(st.floats(min_value=0.1, max_value=200,
                              allow_nan=False),
                    min_size=1, max_size=10))
    def test_shares_conserve_capacity(self, demands):
        arb = BandwidthArbiter(100)
        for i, d in enumerate(demands):
            arb.attach(f"t{i}", d)
        shares = arb.shares()
        assert sum(shares.values()) \
            <= min(100, sum(demands)) + 1e-6
        for i, d in enumerate(demands):
            assert shares[f"t{i}"] <= d + 1e-9

    @given(st.lists(st.floats(min_value=1, max_value=200,
                              allow_nan=False),
                    min_size=2, max_size=8))
    def test_max_min_fairness_property(self, demands):
        """No tenant's share may exceed another's unless the smaller one
        already has its full demand."""
        arb = BandwidthArbiter(50)
        for i, d in enumerate(demands):
            arb.attach(f"t{i}", d)
        shares = arb.shares()
        for i, di in enumerate(demands):
            for j, dj in enumerate(demands):
                si, sj = shares[f"t{i}"], shares[f"t{j}"]
                if si > sj + 1e-6:
                    assert sj == pytest.approx(dj, rel=1e-6)


class TestRingFlows:
    @pytest.fixture()
    def ring(self):
        return RingNetwork(num_nodes=4)

    def test_adjacent_path_one_segment(self, ring):
        assert ring.segments_on_path(0, 1) == [0]
        assert ring.segments_on_path(3, 0) == [3]

    def test_across_path_two_segments(self, ring):
        assert sorted(ring.segments_on_path(0, 2)) in ([0, 1], [2, 3])

    def test_same_node_empty(self, ring):
        assert ring.segments_on_path(2, 2) == []

    def test_register_release(self, ring):
        ring.register_flow("f1", [0, 1])
        assert ring.flows_on_segment(0) == 1
        ring.release_flow("f1")
        assert ring.flows_on_segment(0) == 0

    def test_duplicate_flow_rejected(self, ring):
        ring.register_flow("f1", [0, 1])
        with pytest.raises(ValueError):
            ring.register_flow("f1", [2, 3])

    def test_contention_counts_overlap(self, ring):
        ring.register_flow("f1", [0, 1])
        # a new 0-1 flow shares segment 0 with f1
        assert ring.contention_factor([0, 1]) == 2
        # a 2-3 flow shares nothing
        assert ring.contention_factor([2, 3]) == 1

    def test_single_board_no_contention(self, ring):
        assert ring.contention_factor([1]) == 1


class TestControllerContentionModels:
    def test_dram_contention_off_by_default(self, cluster,
                                            compiled_large):
        controller = SystemController(cluster)
        d = controller.try_deploy(compiled_large, 0, 0.0)
        assert d.service_time_s \
            == pytest.approx(compiled_large.service_time_s())
        controller.release(d)

    def test_dram_demand_attached_per_board(self, cluster,
                                            compiled_large):
        controller = SystemController(cluster)
        d = controller.try_deploy(compiled_large, 0, 0.0)
        board = d.placement.boards[0]
        arb = controller.dram_arbiters[board]
        assert arb.total_demand() == pytest.approx(
            d.num_blocks * DRAM_DEMAND_GBPS_PER_BLOCK)
        controller.release(d)
        assert arb.total_demand() == 0

    def test_dram_contention_slows_packed_board(self, cluster,
                                                compiled_large):
        controller = SystemController(cluster,
                                      model_dram_contention=True)
        base = compiled_large.service_time_s()
        deployments = []
        rid = 0
        while (d := controller.try_deploy(compiled_large, rid, 0.0)) \
                is not None:
            deployments.append(d)
            rid += 1
        # once boards pack beyond the DIMM bandwidth, later admissions
        # see a service-time markup
        slow = [d for d in deployments if d.service_time_s > base * 1.01]
        fast = [d for d in deployments
                if d.service_time_s <= base * 1.01]
        assert fast, "first deployments should be unthrottled"
        board_demand = max(
            arb.total_demand()
            for arb in controller.dram_arbiters.values())
        capacity = next(iter(
            controller.dram_arbiters.values())).capacity_gbps
        if board_demand > capacity:
            assert slow, "oversubscribed board must slow someone"

    def test_ring_contention_raises_overhead(self, cluster,
                                             compiled_large,
                                             compiled_medium):
        """Two deployments spanning the same segment contend."""
        controller = SystemController(cluster)
        # fill boards 0..3 mostly, leaving fragments that force spans
        live = []
        rid = 0
        while (d := controller.try_deploy(compiled_medium, rid, 0.0)) \
                is not None:
            live.append(d)
            rid += 1
        # free fragments on two adjacent board pairs
        freed = {}
        for d in sorted(live, key=lambda d: d.request_id):
            b = d.placement.boards[0]
            if freed.get(b, 0) < compiled_large.num_blocks // 2 + 1:
                controller.release(d)
                live.remove(d)
                freed[b] = freed.get(b, 0) + d.num_blocks
        spans = []
        for i in range(3):
            d = controller.try_deploy(compiled_large, 1000 + i, 0.0)
            if d is not None and d.spans_boards:
                spans.append(d)
        if len(spans) >= 2:
            # later spanning deployments see >= the first's slowdown
            assert spans[-1].comm_slowdown >= spans[0].comm_slowdown
