"""Tests for the arrival-process library."""

import random
import statistics

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.arrivals import (
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
)
from repro.sim.workload import WorkloadGenerator

PROCESSES = [PoissonArrivals(4.0), BurstyArrivals(4.0),
             DiurnalArrivals(4.0)]


class TestCommonProperties:
    @pytest.mark.parametrize("process", PROCESSES,
                             ids=lambda p: type(p).__name__)
    def test_sorted_and_positive(self, process):
        times = process.times(200, random.Random(1))
        assert len(times) == 200
        assert times == sorted(times)
        assert times[0] > 0

    @pytest.mark.parametrize("process", PROCESSES,
                             ids=lambda p: type(p).__name__)
    def test_mean_rate_preserved(self, process):
        times = process.times(3000, random.Random(2))
        mean = times[-1] / len(times)
        assert mean == pytest.approx(4.0, rel=0.2)

    @pytest.mark.parametrize("process", PROCESSES,
                             ids=lambda p: type(p).__name__)
    def test_deterministic_per_seed(self, process):
        a = process.times(50, random.Random(3))
        b = process.times(50, random.Random(3))
        assert a == b


class TestShapes:
    def test_bursty_is_burstier_than_poisson(self):
        rng_a, rng_b = random.Random(5), random.Random(5)
        poisson = PoissonArrivals(4.0).times(2000, rng_a)
        bursty = BurstyArrivals(4.0, burst_size=6).times(2000, rng_b)

        def cv2(times):  # squared coefficient of variation
            gaps = [b - a for a, b in zip(times, times[1:])]
            mu = statistics.mean(gaps)
            return statistics.pvariance(gaps) / (mu * mu)

        assert cv2(bursty) > 1.5 * cv2(poisson)

    def test_diurnal_rate_oscillates(self):
        times = DiurnalArrivals(2.0, period_s=600,
                                amplitude=0.9).times(
            4000, random.Random(7))
        # count arrivals in the peak vs trough half-periods
        peak = sum(1 for t in times if (t % 600) < 300)
        trough = len(times) - peak
        assert peak > 1.5 * trough

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0).times(1, random.Random(0))
        with pytest.raises(ValueError):
            BurstyArrivals(4.0, burst_size=0).times(1, random.Random(0))
        with pytest.raises(ValueError):
            DiurnalArrivals(4.0, amplitude=1.5).times(1,
                                                      random.Random(0))


class TestWorkloadIntegration:
    def test_generator_accepts_custom_process(self):
        gen = WorkloadGenerator(seed=9)
        requests = gen.generate(
            7, num_requests=40,
            arrival_process=BurstyArrivals(4.0, burst_size=5))
        arrivals = [r.arrival_s for r in requests]
        assert arrivals == sorted(arrivals)
        # bursts visible: several gaps far below the mean
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        assert sum(1 for g in gaps if g < 0.5) >= 10

    def test_default_remains_poisson(self):
        gen = WorkloadGenerator(seed=9)
        a = gen.generate(7, num_requests=20)
        b = gen.generate(7, num_requests=20,
                         arrival_process=PoissonArrivals(4.0))
        assert [r.arrival_s for r in a] == [r.arrival_s for r in b]
