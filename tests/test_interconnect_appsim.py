"""Tests for deployment-level cycle simulation (compiler x interconnect)."""

import pytest

from repro.interconnect.appsim import link_class_for, simulate_deployment
from repro.interconnect.links import LinkClass
from repro.runtime.controller import SystemController
from repro.runtime.types import Placement


def single_board_placement(app, board=0):
    return Placement(mapping={vb: (board, vb)
                              for vb in range(app.num_blocks)})


def spanning_placement(app, cluster):
    """Half the blocks on board 0, half on board 1."""
    half = app.num_blocks // 2
    mapping = {}
    for vb in range(app.num_blocks):
        board = 0 if vb < half else 1
        mapping[vb] = (board, vb if vb < half else vb - half)
    return Placement(mapping=mapping)


class TestLinkClassification:
    def test_same_die_on_chip(self, cluster, compiled_medium):
        placement = single_board_placement(compiled_medium)
        # blocks 0 and 1 are both on die 0 of board 0
        assert link_class_for(placement, cluster, 0, 1) \
            is LinkClass.ON_CHIP

    def test_cross_die_detected(self, cluster, compiled_large):
        # block 0 (die 0) vs block index >= 5 (die 1) on one board
        placement = single_board_placement(compiled_large)
        if compiled_large.num_blocks <= 5:
            pytest.skip("app too small to cross dies")
        assert link_class_for(placement, cluster, 0, 5) \
            is LinkClass.INTER_DIE

    def test_cross_board_detected(self, cluster, compiled_large):
        placement = spanning_placement(compiled_large, cluster)
        last = compiled_large.num_blocks - 1
        assert link_class_for(placement, cluster, 0, last) \
            is LinkClass.INTER_FPGA


class TestSimulateDeployment:
    def test_single_board_no_deadlock(self, cluster, compiled_medium):
        placement = single_board_placement(compiled_medium)
        result = simulate_deployment(compiled_medium, placement,
                                     cluster, cycles=2000)
        assert not result.deadlocked
        assert result.total_firings > 0

    def test_spanning_no_deadlock(self, cluster, compiled_large):
        placement = spanning_placement(compiled_large, cluster)
        result = simulate_deployment(compiled_large, placement,
                                     cluster, cycles=2000)
        assert not result.deadlocked
        assert LinkClass.INTER_FPGA in result.channel_links.values()

    def test_same_interface_both_mappings(self, cluster,
                                          compiled_large):
        """The paper's key property: one compiled interface works for
        both the single-FPGA and the multi-FPGA mapping."""
        single = simulate_deployment(
            compiled_large, single_board_placement(compiled_large),
            cluster, cycles=2000)
        spanning = simulate_deployment(
            compiled_large, spanning_placement(compiled_large, cluster),
            cluster, cycles=2000)
        assert not single.deadlocked and not spanning.deadlocked
        # both make comparable progress (latency-insensitivity): the
        # spanning run is slowed only by pipeline fill, not throughput
        assert spanning.total_firings \
            > 0.5 * single.total_firings

    def test_channel_throughput_reported(self, cluster,
                                         compiled_medium):
        placement = single_board_placement(compiled_medium)
        result = simulate_deployment(compiled_medium, placement,
                                     cluster, cycles=2000)
        if result.channel_throughput_gbps:
            assert all(v >= 0
                       for v in result.channel_throughput_gbps.values())

    def test_single_block_app(self, cluster, compiled_small):
        placement = single_board_placement(compiled_small)
        result = simulate_deployment(compiled_small, placement,
                                     cluster, cycles=500)
        assert not result.deadlocked
        assert result.channel_links == {}

    def test_runtime_placement_simulates(self, cluster,
                                         compiled_large):
        """End to end: controller placement -> cycle simulation."""
        controller = SystemController(cluster)
        d = controller.try_deploy(compiled_large, 0, 0.0)
        result = simulate_deployment(compiled_large, d.placement,
                                     cluster, cycles=1000)
        assert not result.deadlocked
        controller.release(d)
