"""Tests for the HLS front-end substitute and the Table 2 catalog."""

import pytest

from repro.hls.frontend import HLSFrontend, synthesize
from repro.hls.kernels import (
    BENCHMARKS,
    REPRESENTATIVE_APPS,
    SizeClass,
    all_benchmarks,
    benchmark,
)
from repro.fabric.devices import make_vu13p
from repro.netlist.dataflow import DataflowGraph


class TestCatalog:
    def test_seven_families_three_sizes(self):
        assert len(BENCHMARKS) == 7
        assert all(len(v) == 3 for v in BENCHMARKS.values())
        assert len(all_benchmarks()) == 21

    def test_lookup_by_string_size(self):
        assert benchmark("svhn", "l").size is SizeClass.LARGE

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            benchmark("bert", "S")

    def test_table2_svhn_large_footprint(self):
        spec = benchmark("svhn", "L")
        assert spec.resources.lut == pytest.approx(269e3)
        assert spec.resources.dff == pytest.approx(268.7e3)
        assert spec.resources.dsp == 520
        assert spec.resources.bram_mb == pytest.approx(31.3)
        assert spec.paper_blocks == 10

    def test_sizes_monotone_in_resources(self):
        for family, variants in BENCHMARKS.items():
            s = variants[SizeClass.SMALL].resources
            m = variants[SizeClass.MEDIUM].resources
            l = variants[SizeClass.LARGE].resources
            assert s.lut < m.lut < l.lut, family
            assert s.bram_mb < m.bram_mb < l.bram_mb, family

    def test_service_times_similar_across_sizes(self):
        # a tenant rents the bigger variant for a bigger batch, so the
        # per-job time stays in the same ballpark (within the markup)
        for family, variants in BENCHMARKS.items():
            times = [v.service_time_s() for v in variants.values()]
            assert max(times) / min(times) < 1.25, family

    def test_service_times_tens_of_seconds(self):
        for spec in all_benchmarks():
            assert 30 <= spec.service_time_s() <= 75, spec.name

    def test_name_format(self):
        assert benchmark("vgg16", "M").name == "vgg16-M"


class TestRepresentativeApps:
    def test_fig1a_apps_fit_vu13p(self):
        cap = make_vu13p().capacity
        for app in REPRESENTATIVE_APPS:
            assert app.resources.utilization_of(cap) <= 1.0, app.name

    def test_fig1a_usage_varies_widely(self):
        cap = make_vu13p().capacity
        utils = [a.resources.utilization_of(cap)
                 for a in REPRESENTATIVE_APPS]
        assert min(utils) < 0.10 and max(utils) > 0.25


class TestFrontend:
    def test_footprint_matches_spec(self):
        spec = benchmark("alexnet", "M")
        usage = synthesize(spec).resource_usage()
        assert usage.lut == pytest.approx(spec.resources.lut, rel=1e-6)
        assert usage.dsp == pytest.approx(spec.resources.dsp, rel=1e-6)
        assert usage.bram_mb \
            == pytest.approx(spec.resources.bram_mb, rel=1e-6)

    def test_streams_present(self):
        nl = synthesize(benchmark("mlp-mnist", "S"))
        names = {p.name for p in nl.ports}
        assert names == {"s_axis_data", "s_axis_weights", "m_axis_result"}

    def test_accumulator_feedback(self):
        nl = synthesize(benchmark("mlp-mnist", "S"))
        assert not DataflowGraph(nl).is_acyclic()

    def test_deterministic_per_spec(self):
        spec = benchmark("lenet5", "S")
        a = synthesize(spec, seed=5)
        b = synthesize(spec, seed=5)
        assert a.num_primitives == b.num_primitives
        assert a.num_nets == b.num_nets

    def test_distinct_specs_distinct_structure(self):
        a = synthesize(benchmark("lenet5", "S"))
        b = synthesize(benchmark("lenet5", "L"))
        assert b.num_primitives > a.num_primitives

    def test_granularity_knob(self):
        spec = benchmark("cifar10", "S")
        coarse = HLSFrontend(macro_lut=2048).synthesize(spec)
        fine = HLSFrontend(macro_lut=128).synthesize(spec)
        assert fine.num_primitives > coarse.num_primitives
        assert fine.resource_usage().lut \
            == pytest.approx(coarse.resource_usage().lut)
