"""Tests for the occupancy renderer."""

import pytest

from repro.analysis.occupancy import occupancy_timeline, \
    render_occupancy
from repro.runtime.controller import SystemController


class TestRenderOccupancy:
    def test_empty_cluster_all_dots(self, cluster):
        controller = SystemController(cluster)
        text = render_occupancy(controller)
        lines = text.splitlines()
        assert len(lines) == cluster.num_boards
        assert all(line.count(".") == cluster.blocks_per_board
                   for line in lines)

    def test_deployment_visible(self, cluster, compiled_medium):
        controller = SystemController(cluster)
        d = controller.try_deploy(compiled_medium, 0, 0.0)
        text = render_occupancy(controller)
        assert text.count("A") == compiled_medium.num_blocks
        controller.release(d)
        assert "A" not in render_occupancy(controller)

    def test_distinct_deployments_distinct_glyphs(self, cluster,
                                                  compiled_small):
        controller = SystemController(cluster)
        controller.try_deploy(compiled_small, 0, 0.0)
        controller.try_deploy(compiled_small, 1, 0.0)
        text = render_occupancy(controller)
        assert "A" in text and "B" in text


class TestOccupancyTimeline:
    def test_timeline_from_audit(self, cluster, compiled_small,
                                 compiled_medium):
        controller = SystemController(cluster)
        d1 = controller.try_deploy(compiled_small, 0, 1.0)
        d2 = controller.try_deploy(compiled_medium, 1, 2.0)
        controller.release(d1, 3.0)
        text = occupancy_timeline(controller.audit, cluster)
        assert "t=" in text
        # the final frame shows B but not A
        final = text.split("\n\n")[-1]
        assert "B" in final and "A" not in final

    def test_empty_log(self, cluster):
        controller = SystemController(cluster)
        assert "no deployments" in occupancy_timeline(controller.audit,
                                                      cluster)

    def test_snapshot_cap(self, cluster, compiled_small):
        controller = SystemController(cluster)
        live = []
        for rid in range(20):
            d = controller.try_deploy(compiled_small, rid, float(rid))
            if d is not None:
                live.append(d)
            elif live:
                controller.release(live.pop(0), float(rid))
        text = occupancy_timeline(controller.audit, cluster,
                                  max_snapshots=5)
        assert text.count("t=") <= 5
