"""Stress tests: pathological netlist topologies through the pipeline.

The Table 2 accelerators are well-behaved module pipelines; these tests
feed the partitioner/interface-generator shapes that break naive graph
heuristics -- stars, cliques, disconnected forests, feedback meshes --
and assert the structural invariants still hold.
"""

import pytest

from repro.compiler.interface_gen import InterfaceGenerator
from repro.compiler.partitioner import NetlistPartitioner
from repro.fabric.resources import ResourceVector
from repro.netlist.netlist import Netlist
from repro.netlist.primitives import PrimitiveType

BLOCK = ResourceVector(lut=400, dff=800, dsp=8, bram_mb=0.5)


def macros(nl, n, lut=50):
    res = ResourceVector(lut=lut, dff=lut * 2, dsp=0.2, bram_mb=0.01)
    return [nl.add_primitive(PrimitiveType.MACRO, resources=res)
            for _ in range(n)]


def partition_of(nl, blocks):
    result = NetlistPartitioner(BLOCK, seed=3).partition(
        nl, num_blocks=blocks)
    result.validate(BLOCK)
    return result


class TestPathologicalTopologies:
    def test_star_hub(self):
        """One hub driving 60 leaves (broadcast-style)."""
        nl = Netlist("star")
        hub, *leaves = macros(nl, 61, lut=20)
        for leaf in leaves:
            nl.add_net(hub, [leaf], width_bits=16)
        result = partition_of(nl, 4)
        iface = InterfaceGenerator().generate(result)
        assert iface.verify_deadlock_free()

    def test_dense_clique(self):
        """All-to-all among 24 macros: any cut is expensive, but the
        pipeline must still terminate with a legal partition."""
        nl = Netlist("clique")
        nodes = macros(nl, 24, lut=60)
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                nl.add_net(a, [b], width_bits=4)
        result = partition_of(nl, 4)
        assert result.cut_bandwidth_bits > 0

    def test_disconnected_forest(self):
        """Six unconnected chains (multi-kernel designs); block count
        left to :func:`blocks_for` since forests pack imperfectly."""
        nl = Netlist("forest")
        for _ in range(6):
            chain = macros(nl, 8, lut=40)
            for a, b in zip(chain, chain[1:]):
                nl.add_net(a, [b], width_bits=32)
        result = NetlistPartitioner(BLOCK, seed=3).partition(nl)
        result.validate(BLOCK)
        assert set(result.assignment.values()) \
            <= set(range(result.num_blocks))

    def test_feedback_mesh(self):
        """Every stage feeds back to stage 0 (deep control loops)."""
        nl = Netlist("mesh")
        chain = macros(nl, 30, lut=40)
        for a, b in zip(chain, chain[1:]):
            nl.add_net(a, [b], width_bits=32)
        for node in chain[1:]:
            nl.add_net(node, [chain[0]], width_bits=8)
        result = partition_of(nl, 4)
        iface = InterfaceGenerator().generate(result)
        # cycles across blocks must have received tokens
        assert iface.verify_deadlock_free()

    def test_single_giant_macro(self):
        """A macro nearly as big as a block partitions alone."""
        nl = Netlist("giant")
        giant = nl.add_primitive(
            PrimitiveType.MACRO,
            resources=ResourceVector(lut=280, dff=560, dsp=5,
                                     bram_mb=0.3))
        small = macros(nl, 10, lut=20)
        for s in small:
            nl.add_net(giant, [s], width_bits=8)
        result = partition_of(nl, 2)
        giant_block = result.assignment[giant]
        assert result.block_usage[giant_block].fits_in(BLOCK)

    def test_wide_buses(self):
        """4k-bit buses between stages stress the bandwidth objective."""
        nl = Netlist("buses")
        chain = macros(nl, 16, lut=80)
        for a, b in zip(chain, chain[1:]):
            nl.add_net(a, [b], width_bits=4096)
        result = partition_of(nl, 4)
        iface = InterfaceGenerator().generate(result)
        for channel in iface.channels:
            assert channel.serialization_factor >= 1.0


class TestPipelineDeterminism:
    def test_flow_is_deterministic(self, cluster):
        from repro.compiler.flow import CompilationFlow
        from repro.hls.kernels import benchmark
        spec = benchmark("alexnet", "S")
        a = CompilationFlow(fabric=cluster.partition,
                            seed=5).compile(spec)
        b = CompilationFlow(fabric=cluster.partition,
                            seed=5).compile(spec)
        assert a.num_blocks == b.num_blocks
        assert a.cut_bandwidth_bits == b.cut_bandwidth_bits
        assert a.flows == b.flows
        assert [i.image_id for i in a.images] \
            == [i.image_id for i in b.images]

    def test_exhaustive_relocation_check_agrees(self, cluster):
        """Step 5's deduped self-check (one probe per footprint class)
        and the exhaustive per-block sweep accept the same designs and
        produce byte-identical artifacts."""
        from repro.compiler.flow import CompilationFlow
        from repro.hls.kernels import benchmark
        spec = benchmark("cifar10", "S")
        deduped = CompilationFlow(fabric=cluster.partition).compile(spec)
        exhaustive = CompilationFlow(
            fabric=cluster.partition,
            exhaustive_relocation_check=True).compile(spec)
        assert deduped.to_json() == exhaustive.to_json()
        # the homogeneous abstraction has exactly one footprint class,
        # so the dedup is a real reduction, not a coincidence
        assert len({b.footprint for b in cluster.partition.blocks}) == 1

    def test_seed_changes_partition_not_validity(self, cluster):
        from repro.compiler.flow import CompilationFlow
        from repro.hls.kernels import benchmark
        spec = benchmark("lenet5", "L")
        apps = [CompilationFlow(fabric=cluster.partition,
                                seed=s).compile(spec)
                for s in (1, 2)]
        for app in apps:
            app.validate()
        # cut bandwidth varies with the heuristic seed but stays sane
        cuts = [a.cut_bandwidth_bits for a in apps]
        assert max(cuts) < 4 * min(cuts)
