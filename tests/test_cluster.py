"""Tests for boards, the ring network, the cluster and reconfiguration."""

import pytest

from repro.cluster.board import DimmSite, FPGABoard
from repro.cluster.cluster import make_cluster
from repro.cluster.network import RingNetwork
from repro.cluster.reconfig import FULL_DEVICE_BITSTREAM_MB, Reconfigurer
from repro.fabric.devices import make_xcvu37p
from repro.fabric.partition import PartitionConstraints, PartitionPlanner


class TestBoard:
    def test_default_two_dimms(self, cluster):
        board = cluster.board(0)
        assert len(board.dimms) == 2
        assert board.dram_capacity_bytes == 2 * 128 * (1 << 30)

    def test_network_bandwidth_from_qsfp(self, cluster):
        # four 1x4 ganged 28 Gb/s cages (Section 5.2)
        assert cluster.board(0).network_bandwidth_gbps \
            == pytest.approx(4 * 4 * 28.0)

    def test_partition_must_match_device(self, partition):
        other_device = make_xcvu37p()
        with pytest.raises(ValueError, match="this board's device"):
            FPGABoard(board_id=0, device=other_device,
                      partition=partition)

    def test_dimm_capacity(self):
        assert DimmSite(0, capacity_gb=64).capacity_bytes == 64 << 30


class TestRingNetwork:
    @pytest.fixture()
    def ring(self):
        return RingNetwork(num_nodes=4)

    def test_distance_shorter_direction(self, ring):
        assert ring.distance(0, 3) == 1
        assert ring.distance(0, 2) == 2
        assert ring.distance(1, 1) == 0

    def test_distance_symmetric(self, ring):
        for a in range(4):
            for b in range(4):
                assert ring.distance(a, b) == ring.distance(b, a)

    def test_out_of_range(self, ring):
        with pytest.raises(IndexError):
            ring.distance(0, 4)

    def test_latency_scales_with_hops(self, ring):
        assert ring.path_latency_us(0, 2) \
            == 2 * ring.path_latency_us(0, 1)

    def test_bandwidth_between_same_node_infinite(self, ring):
        assert ring.bandwidth_between(2, 2) == float("inf")

    def test_span_cost_prefers_adjacent(self, ring):
        assert ring.span_cost([0, 1]) < ring.span_cost([0, 2])
        assert ring.span_cost([0, 1, 2]) < ring.span_cost([0, 1, 3]) + 1

    def test_single_node_ring(self):
        ring = RingNetwork(num_nodes=1)
        assert ring.distance(0, 0) == 0

    def test_invalid_ring(self):
        with pytest.raises(ValueError):
            RingNetwork(num_nodes=0)


class TestCluster:
    def test_paper_platform_shape(self, cluster):
        assert cluster.num_boards == 4
        assert cluster.blocks_per_board == 15
        assert cluster.total_blocks == 60

    def test_shared_footprint(self, cluster):
        footprints = {b.partition.blocks[0].footprint
                      for b in cluster.boards}
        assert footprints == {cluster.footprint}

    def test_all_addresses_unique(self, cluster):
        addresses = cluster.all_addresses()
        assert len(addresses) == len(set(addresses)) == 60

    def test_block_at(self, cluster):
        block = cluster.block_at((2, 7))
        assert block.index == 7

    def test_custom_partition_propagates_policy(self, device):
        constraints = PartitionConstraints(
            remove_intra_fpga_buffers=False, max_reserved_fraction=1.0)
        part = PartitionPlanner(device, constraints).plan()
        cluster = make_cluster(num_boards=2, partition=part)
        assert all(not b.partition.remove_intra_fpga_buffers
                   for b in cluster.boards)

    def test_single_board_cluster(self):
        assert make_cluster(num_boards=1).total_blocks == 15


class TestReconfigurer:
    def test_partial_faster_than_full(self):
        r = Reconfigurer()
        assert r.partial_time_s(9.5) < r.full_device_time_s()

    def test_partial_scales_with_blocks(self):
        r = Reconfigurer()
        assert r.partial_time_for_blocks(9.5, 4) \
            == pytest.approx(4 * r.partial_time_s(9.5))

    def test_full_device_hundreds_of_ms(self):
        t = Reconfigurer().full_device_time_s()
        assert 0.1 < t < 0.5

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Reconfigurer().partial_time_s(0)

    def test_full_bitstream_constant_plausible(self):
        assert 100 < FULL_DEVICE_BITSTREAM_MB < 400
