"""Timeline determinism properties.

The regression gate depends on three invariants, asserted here on real
seeded fault runs rather than synthetic event lists:

- **stream == batch**: feeding the tracer stream one event at a time
  produces byte-identical exports to replaying the retained trace;
- **observation is free**: a health-monitored run's simulation results
  are bit-identical to an unmonitored one (modulo the ``slo_*`` summary
  fields the monitor itself fills in);
- **warm restart is invisible**: cutting the stream at any bucket
  boundary, snapshotting, and restoring -- including across a
  *controller* snapshot/restore -- continues the series exactly.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.faults import FaultSchedule
from repro.obs.slo import SLOEngine
from repro.obs.timeline import TimelineAggregator
from repro.obs.tracer import Tracer
from repro.runtime.controller import SystemController
from repro.sim.experiment import run_experiment
from repro.sim.workload import Request

INTERVAL_S = 10.0


@pytest.fixture(scope="module")
def requests(compiled_small, compiled_medium, compiled_large):
    specs = [compiled_small.spec, compiled_medium.spec,
             compiled_large.spec]
    return [Request(request_id=i, spec=specs[i % 3],
                    arrival_s=1.0 + 2.5 * i)
            for i in range(30)]


def run_health(cluster, requests, compiled_apps, recovery="migrate"):
    """One demo-fault run with a retaining tracer + full health stack."""
    tracer = Tracer()
    timeline = TimelineAggregator(interval_s=INTERVAL_S)
    slo = SLOEngine()
    result = run_experiment(
        SystemController(cluster), requests, compiled_apps,
        faults=FaultSchedule.demo(len(cluster.boards)),
        recovery=recovery, tracer=tracer, timeline=timeline, slo=slo)
    return result, tracer, timeline, slo


def batch_replay(events, timeline):
    """Recompute ``timeline`` from its run's exported events."""
    end_t = max(e["t"] for e in events
                if not e["name"].startswith("slo."))
    return TimelineAggregator.from_events(
        events, interval_s=timeline.interval_s,
        capacity_blocks=timeline.capacity_blocks,
        num_boards=timeline.num_boards,
        board_capacity=timeline.board_capacity, end_t=end_t)


class TestStreamEqualsBatch:
    def test_incremental_matches_batch_replay(self, cluster, requests,
                                              compiled_apps):
        _, tracer, timeline, _ = run_health(cluster, requests,
                                            compiled_apps)
        events = list(tracer.entries())
        batch = batch_replay(events, timeline)
        assert batch.to_json() == timeline.to_json()
        assert batch.to_csv() == timeline.to_csv()

    def test_snapshot_restore_at_any_cut_matches_batch(
            self, cluster, requests, compiled_apps):
        _, tracer, timeline, _ = run_health(cluster, requests,
                                            compiled_apps)
        events = list(tracer.entries())
        end_t = max(e["t"] for e in events
                    if not e["name"].startswith("slo."))
        for cut in (1, len(events) // 3, len(events) // 2,
                    len(events) - 1):
            first = TimelineAggregator(
                interval_s=INTERVAL_S,
                capacity_blocks=timeline.capacity_blocks,
                num_boards=timeline.num_boards,
                board_capacity=timeline.board_capacity)
            for entry in events[:cut]:
                first.observe(entry)
            resumed = TimelineAggregator.restore(first.snapshot())
            for entry in events[cut:]:
                resumed.observe(entry)
            resumed.finish(end_t)
            assert resumed.to_json() == timeline.to_json(), \
                f"cut at event {cut} diverged"

    def test_byte_stable_across_runs(self, cluster, requests,
                                     compiled_apps):
        runs = [run_health(cluster, requests, compiled_apps)
                for _ in range(2)]
        (_, t1, tl1, s1), (_, t2, tl2, s2) = runs
        assert tl1.to_json() == tl2.to_json()
        assert t1.to_jsonl() == t2.to_jsonl()
        assert s1.report() == s2.report()


class TestObservationIsFree:
    def test_summary_identical_modulo_slo_fields(self, cluster,
                                                 requests,
                                                 compiled_apps):
        plain = run_experiment(
            SystemController(cluster), requests, compiled_apps,
            faults=FaultSchedule.demo(len(cluster.boards)),
            recovery="migrate")
        monitored, _, _, slo = run_health(cluster, requests,
                                          compiled_apps)
        assert slo.total_violations() >= 1  # the outage tripped a rule
        stripped = replace(monitored.summary, slo_rules=0.0,
                           slo_violations=0.0, slo_violated_s=0.0,
                           slo_recovered=0.0)
        assert stripped == plain.summary
        assert monitored.records == plain.records

    def test_demo_outage_trips_and_recovers(self, cluster, requests,
                                            compiled_apps):
        result, tracer, _, slo = run_health(cluster, requests,
                                            compiled_apps)
        names = [e["name"] for e in tracer.entries()]
        assert "slo.violation" in names
        assert "slo.recovered" in names
        assert slo.all_recovered()
        assert result.summary.slo_violations == \
            result.summary.slo_recovered


class TestControllerWarmRestart:
    def test_timeline_stream_survives_controller_restore(
            self, cluster, compiled_small, compiled_medium):
        def drive(restart):
            """Deploy / maybe warm-restart / fail / repair / release,
            all narrated into one shared timeline stream."""
            tracer = Tracer()
            timeline = TimelineAggregator(
                interval_s=INTERVAL_S, capacity_blocks=40,
                num_boards=4, board_capacity=10)
            tracer.add_sink(timeline.on_record)
            ctrl = SystemController(cluster)
            ctrl.attach_tracer(tracer)
            assert ctrl.try_deploy(compiled_medium, 1, now=2.0,
                                   tenant="alice") is not None
            assert ctrl.try_deploy(compiled_small, 2, now=4.0,
                                   tenant="bob") is not None
            ctrl = restart(ctrl, tracer)
            ctrl.fail_board(3, now=15.0)
            ctrl.repair_board(3, now=25.0)
            for rid in (1, 2):
                ctrl.release(ctrl.deployments[rid], now=31.0 + rid)
            timeline.finish(35.0)
            assert ctrl.deployments == {}
            return timeline

        continuous = drive(lambda ctrl, tracer: ctrl)

        def warm_restart(ctrl, tracer):
            snap = ctrl.snapshot()
            # the old controller dies silently: its releases must not
            # narrate into the stream, and it must hand back its ring
            # flows before anything else on this shared cluster
            ctrl.attach_tracer(None)
            for deployment in list(ctrl.deployments.values()):
                ctrl.release(deployment)
            restored = SystemController.restore(cluster, snap,
                                                ctrl.bitstream_db)
            restored.attach_tracer(tracer)
            return restored

        restarted = drive(warm_restart)
        assert restarted.to_json() == continuous.to_json()
