"""Tests for structural Verilog import and writer/parser round trips."""

import pytest

from repro.fabric.resources import ResourceVector
from repro.hls.frontend import HLSFrontend
from repro.hls.kernels import benchmark
from repro.netlist.netlist import Netlist, PortDirection
from repro.netlist.primitives import PrimitiveType
from repro.netlist.verilog import to_verilog
from repro.netlist.verilog_parser import VerilogParseError, \
    parse_verilog


def counts_by_kind(netlist):
    out = {}
    for prim in netlist.primitives.values():
        out[prim.kind] = out.get(prim.kind, 0) + 1
    return out


class TestParseBasics:
    def test_minimal_module(self):
        nl = parse_verilog(
            "module m (clk, a, y);\n"
            "  input clk;\n"
            "  input a;\n"
            "  output y;\n"
            "  wire net_0;\n"
            "  wire net_1;\n"
            "  assign net_0 = a;\n"
            "  assign y = net_1;\n"
            "  LUT6 u0 (.clk(clk), .i0(net_0), .o0(net_1));\n"
            "endmodule\n")
        assert nl.name == "m"
        assert len(nl.input_ports()) == 1
        assert len(nl.output_ports()) == 1
        assert counts_by_kind(nl)[PrimitiveType.LUT] == 1

    def test_macro_parameters_parsed(self):
        nl = parse_verilog(
            "module m (clk);\n"
            "  wire net_0;\n"
            "  vital_macro #(.LUTS(100), .DFFS(200), .DSPS(3), "
            ".BRAM_KB(512)) u0 (.clk(clk), .o0(net_0));\n"
            "  LUT6 u1 (.clk(clk), .i0(net_0));\n"
            "endmodule\n")
        macro = next(p for p in nl.primitives.values()
                     if p.kind is PrimitiveType.MACRO)
        assert macro.resources.lut == 100
        assert macro.resources.bram_mb == pytest.approx(0.5)

    def test_missing_endmodule(self):
        with pytest.raises(VerilogParseError, match="endmodule"):
            parse_verilog("module m (clk);\n")

    def test_unknown_cell(self):
        with pytest.raises(VerilogParseError, match="unknown cell"):
            parse_verilog("module m (clk);\n"
                          "  MYSTERY u0 (.clk(clk));\nendmodule\n")

    def test_double_driven_wire(self):
        with pytest.raises(VerilogParseError, match="driven twice"):
            parse_verilog(
                "module m (clk);\n"
                "  wire net_0;\n"
                "  LUT6 u0 (.clk(clk), .o0(net_0));\n"
                "  LUT6 u1 (.clk(clk), .o0(net_0));\n"
                "  FDRE u2 (.clk(clk), .i0(net_0));\n"
                "endmodule\n")

    def test_unsupported_construct(self):
        with pytest.raises(VerilogParseError, match="unsupported"):
            parse_verilog("module m (clk);\n"
                          "  always @(posedge clk) q <= d;\n"
                          "endmodule\n")

    def test_non_module_start(self):
        with pytest.raises(VerilogParseError):
            parse_verilog("wire x;\n")


class TestRoundTrip:
    def roundtrip(self, netlist):
        return parse_verilog(to_verilog(netlist))

    def test_small_handbuilt(self):
        nl = Netlist("rt")
        a = nl.add_primitive(PrimitiveType.LUT)
        b = nl.add_primitive(PrimitiveType.FF)
        c = nl.add_primitive(
            PrimitiveType.MACRO,
            resources=ResourceVector(lut=64, dff=128, dsp=1,
                                     bram_mb=0.036))
        inp = nl.add_port("din", PortDirection.INPUT, 8)
        outp = nl.add_port("dout", PortDirection.OUTPUT, 8)
        nl.add_net(inp.primitive_uid, [a], width_bits=8)
        nl.add_net(a, [b])
        nl.add_net(b, [c], width_bits=4)
        nl.add_net(c, [outp.primitive_uid], width_bits=8)
        back = self.roundtrip(nl)
        assert counts_by_kind(back) == counts_by_kind(nl)
        assert back.num_nets == nl.num_nets
        assert back.resource_usage().lut \
            == pytest.approx(nl.resource_usage().lut)

    def test_synthesized_benchmark_roundtrip(self):
        nl = HLSFrontend(macro_lut=2048).synthesize(
            benchmark("mlp-mnist", "S"))
        back = self.roundtrip(nl)
        assert counts_by_kind(back) == counts_by_kind(nl)
        # resource usage preserved to parameter-printing precision
        assert back.resource_usage().lut \
            == pytest.approx(nl.resource_usage().lut, rel=1e-3)
        assert back.resource_usage().bram_mb \
            == pytest.approx(nl.resource_usage().bram_mb, rel=1e-2)
        assert {p.name for p in back.ports} == {p.name
                                                for p in nl.ports}

    def test_roundtrip_partitions_identically_enough(self, partition):
        """A re-imported netlist flows through the compiler."""
        from repro.compiler.partitioner import NetlistPartitioner
        nl = HLSFrontend(macro_lut=2048).synthesize(
            benchmark("cifar10", "S"))
        back = self.roundtrip(nl)
        result = NetlistPartitioner(
            partition.block_capacity).partition(back)
        result.validate(partition.block_capacity)

    def test_techmap_lowering_roundtrip(self):
        from repro.compiler.techmap import technology_map
        from repro.netlist.logic import LogicNetwork
        mapped = technology_map(
            LogicNetwork.random(num_gates=60, seed=4,
                                ff_probability=0.1))
        nl = mapped.to_netlist()
        back = self.roundtrip(nl)
        assert counts_by_kind(back) == counts_by_kind(nl)
