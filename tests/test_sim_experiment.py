"""Tests for the experiment loop (the Fig. 9/10 driver)."""

import pytest

from repro.baselines.amorphos import AmorphOSManager
from repro.baselines.per_device import PerDeviceManager
from repro.runtime.controller import SystemController
from repro.sim.experiment import compare_managers, run_experiment
from repro.sim.workload import Request
from repro.hls.kernels import benchmark


def requests_for(apps, arrivals):
    """One request per (app, arrival time)."""
    return [Request(request_id=i, spec=app.spec, arrival_s=t)
            for i, (app, t) in enumerate(zip(apps, arrivals))]


class TestRunExperiment:
    def test_all_requests_complete(self, cluster, compiled_apps,
                                   compiled_small):
        reqs = requests_for([compiled_small] * 6,
                            [1 + i * 0.5 for i in range(6)])
        result = run_experiment(SystemController(cluster), reqs,
                                compiled_apps)
        assert result.summary.num_requests == 6
        assert all(r.finished for r in result.records)

    def test_fifo_order_for_identical_requests(self, cluster,
                                               compiled_apps,
                                               compiled_large):
        reqs = requests_for([compiled_large] * 10,
                            [1 + i * 0.1 for i in range(10)])
        result = run_experiment(SystemController(cluster), reqs,
                                compiled_apps)
        deploys = [r.deployed_s for r in
                   sorted(result.records, key=lambda r: r.request_id)]
        assert deploys == sorted(deploys)

    def test_response_includes_wait(self, cluster, compiled_apps,
                                    compiled_large):
        # 10 large apps cannot all run at once on 60 blocks
        reqs = requests_for([compiled_large] * 10, [1.0] * 10)
        result = run_experiment(SystemController(cluster), reqs,
                                compiled_apps)
        waits = [r.wait_s for r in result.records]
        assert max(waits) > 0

    def test_per_device_queues_behind_four_boards(self, cluster,
                                                  compiled_apps,
                                                  compiled_small):
        reqs = requests_for([compiled_small] * 8, [1.0] * 8)
        result = run_experiment(PerDeviceManager(cluster), reqs,
                                compiled_apps)
        # 4 run immediately, 4 wait a full service time
        waits = sorted(r.wait_s for r in result.records)
        assert waits[3] == pytest.approx(0.0, abs=1e-9)
        assert waits[4] > compiled_small.service_time_s() * 0.9

    def test_amorphos_penalties_extend_corunners(self, cluster,
                                                 compiled_apps,
                                                 compiled_small):
        reqs = requests_for([compiled_small] * 3, [1.0, 2.0, 3.0])
        result = run_experiment(AmorphOSManager(cluster), reqs,
                                compiled_apps)
        first = next(r for r in result.records if r.request_id == 0)
        # request 0 was paused by requests 1 and 2 joining its board
        expected_min = (compiled_small.service_time_s()
                        + 3 * result.records[0].reconfig_time_s)
        assert first.response_s >= expected_min * 0.99

    def test_backfill_lets_small_jump(self, cluster, compiled_apps,
                                      compiled_small, compiled_large):
        # saturate, then queue a large (head) and a small behind it
        apps = [compiled_large] * 7 + [compiled_large, compiled_small]
        reqs = requests_for(apps, [0.1 * i for i in range(9)])
        strict = run_experiment(SystemController(cluster), reqs,
                                compiled_apps, backfill=False)
        jumpy = run_experiment(SystemController(cluster), reqs,
                               compiled_apps, backfill=True)
        small_wait_strict = [r for r in strict.records
                             if r.request_id == 8][0].wait_s
        small_wait_backfill = [r for r in jumpy.records
                               if r.request_id == 8][0].wait_s
        assert small_wait_backfill <= small_wait_strict

    def test_sjf_prefers_short_jobs(self, cluster, compiled_apps,
                                    compiled_small, compiled_large):
        # saturate, then queue long and short jobs together; note
        # svhn-L's per-job service (60 s x1.1) exceeds mlp-mnist-S (40 s)
        apps = [compiled_large] * 7 + [compiled_large, compiled_small]
        reqs = requests_for(apps, [0.1 * i for i in range(9)])
        fifo = run_experiment(SystemController(cluster), reqs,
                              compiled_apps, discipline="fifo")
        sjf = run_experiment(SystemController(cluster), reqs,
                             compiled_apps, discipline="sjf")
        wait = lambda res, rid: [r for r in res.records
                                 if r.request_id == rid][0].wait_s
        assert wait(sjf, 8) <= wait(fifo, 8)

    def test_unknown_discipline_rejected(self, cluster, compiled_apps,
                                         compiled_small):
        reqs = requests_for([compiled_small], [1.0])
        with pytest.raises(ValueError, match="discipline"):
            run_experiment(SystemController(cluster), reqs,
                           compiled_apps, discipline="lifo")

    def test_backfill_flag_maps_to_discipline(self, cluster,
                                              compiled_apps,
                                              compiled_small):
        reqs = requests_for([compiled_small] * 3, [1.0, 2.0, 3.0])
        a = run_experiment(SystemController(cluster), reqs,
                           compiled_apps, backfill=True)
        b = run_experiment(SystemController(cluster), reqs,
                           compiled_apps, discipline="backfill")
        assert a.summary.mean_response_s \
            == pytest.approx(b.summary.mean_response_s)

    def test_extras_report_amorphos_combinations(self, cluster,
                                                 compiled_apps,
                                                 compiled_small):
        reqs = requests_for([compiled_small] * 3, [1.0, 2.0, 3.0])
        result = run_experiment(AmorphOSManager(cluster), reqs,
                                compiled_apps)
        assert result.extras["combinations"] >= 1


class TestCompareManagers:
    def test_vital_beats_per_device(self, cluster, compiled_apps,
                                    compiled_small, compiled_medium):
        # hand-built workload set: burst of mixed sizes
        reqs = requests_for(
            [compiled_small, compiled_medium] * 8,
            [0.5 * i for i in range(16)])
        out = compare_managers(
            {1: [reqs]}, cluster=cluster, apps=compiled_apps,
            managers={"per-device": PerDeviceManager,
                      "vital": SystemController})
        assert out["vital"][1].mean_response_s \
            < out["per-device"][1].mean_response_s

    def test_vital_concurrency_higher(self, cluster, compiled_apps,
                                      compiled_small):
        reqs = requests_for([compiled_small] * 12,
                            [0.2 * i for i in range(12)])
        out = compare_managers(
            {1: [reqs]}, cluster=cluster, apps=compiled_apps,
            managers={"per-device": PerDeviceManager,
                      "vital": SystemController})
        assert out["vital"][1].peak_concurrency \
            > out["per-device"][1].peak_concurrency

    def test_replica_averaging(self, cluster, compiled_apps,
                               compiled_small):
        r1 = requests_for([compiled_small] * 4, [1, 2, 3, 4])
        r2 = requests_for([compiled_small] * 4, [1, 1.5, 2, 2.5])
        out = compare_managers(
            {1: [r1, r2]}, cluster=cluster, apps=compiled_apps,
            managers={"vital": SystemController})
        assert out["vital"][1].num_requests == 4
