"""Chaos campaign harness: scenarios, invariants, and the guard win.

Acceptance criteria under test:
- the same seed replays a scenario trace-identically;
- a guarded run with an empty schedule and empty domain map is
  bit-identical to a fault-free run (the guard is free when idle);
- on the correlated rack-flap scenario the degraded-mode guard beats
  the PR 1 recovery-only baseline on goodput *and* interruptions;
- invariants are checked after every event and the end-of-run goodput
  floor is enforced;
- the campaign covers the whole matrix deterministically.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.faults import FailureDomainMap, FaultSchedule
from repro.obs.tracer import Tracer
from repro.runtime.controller import SystemController
from repro.runtime.guard import DegradedModeGuard, GuardConfig
from repro.sim.chaos import (
    ChaosInvariantError,
    ChaosScenario,
    rack_flap_events,
    run_campaign,
    run_scenario,
    standard_scenarios,
)
from repro.sim.experiment import compile_benchmarks, run_experiment
from repro.sim.workload import Request


@pytest.fixture(scope="module")
def chaos_cluster():
    from repro.cluster.cluster import make_cluster
    return make_cluster(num_boards=8)


@pytest.fixture(scope="module")
def chaos_apps(chaos_cluster):
    return compile_benchmarks(chaos_cluster)


def _scenario(name: str) -> ChaosScenario:
    for scenario in standard_scenarios():
        if scenario.name == name:
            return scenario
    raise LookupError(name)


class TestScenarios:
    def test_matrix_names_are_unique(self):
        names = [s.name for s in standard_scenarios()]
        assert len(names) == len(set(names))
        assert "rack-flap" in names and "zone-cascade" in names

    def test_schedules_validate_against_their_clusters(self):
        for scenario in standard_scenarios():
            scenario.schedule().validate_for(scenario.num_boards)
            scenario.domain_map().validate_for(scenario.num_boards)

    def test_schedule_is_a_pure_function_of_the_scenario(self):
        scenario = _scenario("mixed")
        assert scenario.schedule().events \
            == scenario.schedule().events

    def test_rack_flap_events_validate_windows(self):
        with pytest.raises(ValueError):
            rack_flap_events((0, 1), ((10.0, 5.0),))


class TestRunScenario:
    def test_same_seed_is_trace_identical(self, chaos_cluster,
                                          chaos_apps):
        scenario = _scenario("rack-outage")

        def run() -> str:
            tracer = Tracer()
            run_scenario(scenario, tracer=tracer, apps=chaos_apps,
                         cluster=chaos_cluster)
            return tracer.to_jsonl()

        assert run() == run()

    def test_guard_beats_recovery_only_on_rack_flap(
            self, chaos_cluster, chaos_apps):
        scenario = _scenario("rack-flap")
        guarded = run_scenario(scenario, with_guard=True,
                               apps=chaos_apps, cluster=chaos_cluster)
        baseline = run_scenario(scenario, with_guard=False,
                                apps=chaos_apps,
                                cluster=chaos_cluster)
        assert guarded.summary.goodput_fraction \
            > baseline.summary.goodput_fraction
        assert guarded.summary.interruptions \
            < baseline.summary.interruptions
        assert guarded.quarantines > 0
        assert baseline.quarantines == 0

    def test_invariants_run_on_every_event(self, chaos_cluster,
                                           chaos_apps):
        result = run_scenario(_scenario("rack-flap"),
                              apps=chaos_apps, cluster=chaos_cluster)
        assert result.invariant_checks > result.fault_events

    def test_goodput_floor_is_enforced(self, chaos_cluster,
                                       chaos_apps):
        impossible = dataclasses.replace(_scenario("rack-flap"),
                                         goodput_floor=1.01)
        with pytest.raises(ChaosInvariantError, match="below floor"):
            run_scenario(impossible, apps=chaos_apps,
                         cluster=chaos_cluster)

    def test_summary_carries_guard_counters(self, chaos_cluster,
                                            chaos_apps):
        result = run_scenario(_scenario("rack-flap"),
                              apps=chaos_apps, cluster=chaos_cluster)
        assert result.summary.quarantines == result.quarantines
        assert result.summary.probations == result.probations
        assert result.summary.shed_requests == result.shed
        assert result.summary.degraded_s > 0
        assert result.as_dict()["summary"]["goodput_fraction"] \
            == result.summary.goodput_fraction

    def test_wrong_cluster_size_rejected(self, cluster, chaos_apps):
        with pytest.raises(ValueError, match="boards"):
            run_scenario(_scenario("rack-flap"), apps=chaos_apps,
                         cluster=cluster)  # session cluster has 4


class TestGuardIsFreeWhenIdle:
    def test_empty_schedule_and_map_bit_identical_to_fault_free(
            self, cluster, compiled_apps, compiled_small,
            compiled_medium, compiled_large):
        specs = [compiled_small.spec, compiled_medium.spec,
                 compiled_large.spec]
        requests = [Request(request_id=i, spec=specs[i % 3],
                            arrival_s=1.0 + 2.0 * i)
                    for i in range(25)]

        def run(guard, faults):
            tracer = Tracer()
            controller = SystemController(cluster)
            controller.tracer = tracer
            result = run_experiment(
                controller, requests, compiled_apps, faults=faults,
                tracer=tracer, guard=guard)
            return tracer.to_jsonl(), result.summary

        plain_trace, plain = run(None, None)
        guarded_trace, guarded = run(
            DegradedModeGuard(GuardConfig()), FaultSchedule.empty())
        assert guarded_trace == plain_trace
        assert guarded == plain
        assert guarded.degraded_s == 0.0
        assert guarded.quarantines == 0.0
        # the empty domain map generates nothing to schedule at all
        assert not FailureDomainMap.empty()


class TestWarmRestart:
    """PR 7 regression: a controller warm restart mid-chaos must be
    invisible -- same placements, same quarantine decisions, same trace
    as the uninterrupted run.  Before the snapshot carried the guard's
    breaker state and the gray-ICAP multipliers, a restart silently
    healed quarantined and degraded boards."""

    def test_restart_mid_quarantine_is_trace_identical(
            self, chaos_cluster, chaos_apps):
        scenario = _scenario("warm-restart")
        assert scenario.restart_at is not None

        def run(s) -> tuple:
            tracer = Tracer()
            result = run_scenario(s, tracer=tracer, apps=chaos_apps,
                                  cluster=chaos_cluster)
            return tracer.to_jsonl(), result

        restarted_trace, restarted = run(scenario)
        plain_trace, plain = run(
            dataclasses.replace(scenario, restart_at=None))
        assert restarted_trace == plain_trace
        assert restarted.summary == plain.summary
        # the restart happens while the flapping rack is quarantined,
        # so the breaker state is genuinely load-bearing here
        assert restarted.quarantines == plain.quarantines > 0

    def test_simulate_warm_restart_preserves_degradation(
            self, chaos_cluster, chaos_apps):
        from repro.sim.chaos import simulate_warm_restart
        controller = SystemController(chaos_cluster)
        guard = DegradedModeGuard(GuardConfig())
        controller.attach_guard(guard)
        controller.degrade_icap(3, latency_multiplier=6.0)
        before = controller.snapshot()
        simulate_warm_restart(controller)
        assert controller.guard is guard  # identity survives
        assert controller.degraded_icaps() == {3: 6.0}
        assert controller.snapshot() == before
        # leave the shared module cluster clean
        controller.restore_icap(3)


class TestCampaign:
    def test_campaign_covers_the_matrix(self, chaos_cluster,
                                        chaos_apps):
        scenarios = [_scenario("rack-flap"), _scenario("gray-icap")]
        campaign = run_campaign(scenarios)
        assert [r.scenario for r in campaign.results] \
            == ["rack-flap", "gray-icap"]
        assert campaign.by_name("gray-icap").guarded
        with pytest.raises(KeyError):
            campaign.by_name("nope")
        doc = campaign.as_dict()
        assert len(doc["scenarios"]) == 2


class TestDefragScenario:
    def test_rack_outage_defrag_migrates_safely(self, chaos_cluster,
                                                chaos_apps):
        result = run_scenario(_scenario("rack-outage-defrag"),
                              apps=chaos_apps, cluster=chaos_cluster)
        # the defragmenter actually moved things mid-chaos, and the
        # per-event probe (which rejects any migration landing on a
        # failed or quarantined board) vetted every one of them
        assert result.summary.migrations > 0
        assert result.summary.migration_pause_s > 0
        assert result.invariant_checks > result.fault_events
        assert result.summary.goodput_fraction \
            >= _scenario("rack-outage-defrag").goodput_floor

    def test_defrag_scenario_is_trace_identical(self, chaos_cluster,
                                                chaos_apps):
        scenario = _scenario("rack-outage-defrag")

        def run() -> str:
            tracer = Tracer()
            run_scenario(scenario, tracer=tracer, apps=chaos_apps,
                         cluster=chaos_cluster)
            return tracer.to_jsonl()

        assert run() == run()

    def test_defrag_off_bit_identical_to_stock_runs(
            self, cluster, compiled_apps, compiled_small,
            compiled_medium, compiled_large):
        """``defrag=None`` must be byte-identical to a run that never
        heard of defragmentation -- trace and summary both."""
        specs = [compiled_small.spec, compiled_medium.spec,
                 compiled_large.spec]
        requests = [Request(request_id=i, spec=specs[i % 3],
                            arrival_s=1.0 + 2.0 * i)
                    for i in range(25)]

        def run(**kwargs):
            tracer = Tracer()
            controller = SystemController(cluster)
            controller.tracer = tracer
            result = run_experiment(controller, requests,
                                    compiled_apps, tracer=tracer,
                                    **kwargs)
            return tracer.to_jsonl(), result.summary

        stock_trace, stock = run()
        off_trace, off = run(defrag=None)
        false_trace, false_summary = run(defrag=False)
        assert off_trace == stock_trace
        assert false_trace == stock_trace
        assert off == stock == false_summary
        assert stock.migrations == 0.0
