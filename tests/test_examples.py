"""Smoke tests: every example script runs cleanly end to end.

Examples are the public face of the library; each must execute without
errors and print its key claims.  They run as subprocesses so import
side effects and ``__main__`` guards are exercised exactly as a user
would hit them.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

CASES = [
    ("quickstart.py", ["compiled svhn-L", "cluster utilization"]),
    ("scale_out_acceleration.py",
     ["spans FPGAs: True", "latency overhead"]),
    ("secure_multi_tenancy.py",
     ["blocked by the translation unit", "verified disjoint"]),
    ("heterogeneous_cluster.py",
     ["compiled once per footprint group", "isolation verified"]),
    ("rtl_to_cloud.py",
     ["equivalence check", "deployed parity64"]),
    ("operator_day.py",
     ["quota: free-tier", "restarted controller"]),
    ("multi_tenant_cloud.py",
     ["one workload-set replay", "cuts mean response time"]),
]


@pytest.mark.parametrize("script,expected",
                         CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, expected):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr[-2000:]
    for phrase in expected:
        assert phrase in result.stdout, (script, phrase)
