"""The compile service: cached and parallel compiles are bit-identical.

The acceptance bar for the offline service is exact equivalence: a
cached artifact, a persisted-and-reloaded artifact and a
worker-process-compiled artifact must serialize to the same bytes as a
sequential fresh compile, and traces must agree modulo the ``cache.*``
lookup events.  Wall-clock *speed* is asserted in
``benchmarks/test_compile_service.py``; this module pins correctness
with a small spec subset so the tier-1 suite stays fast.
"""

from __future__ import annotations

import pytest

from repro.cluster.cluster import make_cluster
from repro.compiler.cache import CompileCache
from repro.compiler.service import CompileService
from repro.hls.kernels import benchmark
from repro.obs.tracer import Tracer
from repro.runtime.bitstream_db import BitstreamDB
from repro.runtime.persistence import (load_bitstream_db,
                                       save_bitstream_db)

#: small subset: three families, one/multi-block mix
SPECS = [("mlp-mnist", "S"), ("lenet5", "S"), ("cifar10", "S")]


@pytest.fixture(scope="module")
def specs():
    return [benchmark(f, s) for f, s in SPECS]


@pytest.fixture(scope="module")
def fresh(cluster, specs):
    """Sequential, uncached compiles: the reference artifacts."""
    service = CompileService(fabric=cluster.partition)
    return service.compile_many(specs)


def _non_cache_entries(tracer: Tracer) -> list[dict]:
    out = []
    for e in tracer.entries():
        if e["name"].startswith("cache."):
            continue
        e = dict(e)
        e.pop("seq")  # interleaved cache.* events shift sequence ids
        out.append(e)
    return out


class TestWarmCache:
    def test_warm_hits_are_byte_identical(self, cluster, specs, fresh):
        cache = CompileCache()
        service = CompileService(fabric=cluster.partition, cache=cache)
        cold = service.compile_many(specs)
        warm = service.compile_many(specs)
        for spec in specs:
            assert warm[spec.name] is cold[spec.name]  # same object
            assert warm[spec.name].to_json() \
                == fresh[spec.name].to_json()
        assert cache.stats()["misses"] == len(specs)
        assert cache.stats()["hits"] == len(specs)

    def test_result_order_matches_input(self, cluster, specs):
        cache = CompileCache()
        service = CompileService(fabric=cluster.partition, cache=cache)
        service.compile_many(specs)
        reversed_out = service.compile_many(list(reversed(specs)))
        assert list(reversed_out) == [s.name for s in reversed(specs)]

    def test_traces_agree_modulo_cache_events(self, cluster, specs):
        cold_tracer, warm_tracer = Tracer(), Tracer()
        cache = CompileCache()
        CompileService(fabric=cluster.partition, cache=cache,
                       tracer=cold_tracer).compile_many(specs)
        CompileService(fabric=cluster.partition, cache=cache,
                       tracer=warm_tracer).compile_many(specs)
        assert _non_cache_entries(cold_tracer) \
            == _non_cache_entries(warm_tracer)
        cold_cache = [e["name"] for e in cold_tracer.entries()
                      if e["name"].startswith("cache.")]
        warm_cache = [e["name"] for e in warm_tracer.entries()
                      if e["name"].startswith("cache.")]
        assert cold_cache == ["cache.miss"] * len(specs)
        assert warm_cache == ["cache.hit"] * len(specs)

    def test_uncached_trace_has_no_cache_events(self, cluster, specs):
        tracer = Tracer()
        CompileService(fabric=cluster.partition,
                       tracer=tracer).compile_many(specs)
        assert not [e for e in tracer.entries()
                    if e["name"].startswith("cache.")]


class TestParallel:
    def test_parallel_bit_identical(self, cluster, specs, fresh):
        service = CompileService(fabric=cluster.partition)
        parallel = service.compile_many(specs, jobs=2)
        for spec in specs:
            assert parallel[spec.name].to_json() \
                == fresh[spec.name].to_json()

    def test_parallel_keeps_measured_walls(self, cluster, specs):
        service = CompileService(fabric=cluster.partition)
        apps = service.compile_many(specs, jobs=2)
        for app in apps.values():
            # profiling data survives the worker boundary even though
            # it rides outside the canonical payload
            assert app.breakdown.measured_custom_s > 0.0
            assert app.breakdown.measured_wall_s \
                >= app.breakdown.measured_custom_s

    def test_parallel_trace_matches_inline(self, cluster, specs):
        inline_tracer, parallel_tracer = Tracer(), Tracer()
        CompileService(fabric=cluster.partition,
                       tracer=inline_tracer).compile_many(specs, jobs=1)
        CompileService(fabric=cluster.partition,
                       tracer=parallel_tracer).compile_many(specs,
                                                            jobs=2)
        assert inline_tracer.to_jsonl() == parallel_tracer.to_jsonl()

    def test_parallel_fills_cache(self, cluster, specs, fresh):
        cache = CompileCache()
        service = CompileService(fabric=cluster.partition, cache=cache)
        service.compile_many(specs, jobs=2)
        warm = service.compile_many(specs, jobs=2)
        assert cache.stats()["hits"] == len(specs)
        for spec in specs:
            assert warm[spec.name].to_json() \
                == fresh[spec.name].to_json()

    def test_rejects_bad_jobs(self, cluster, specs):
        with pytest.raises(ValueError, match="jobs"):
            CompileService(fabric=cluster.partition).compile_many(
                specs, jobs=0)

    def test_rejects_duplicate_names(self, cluster, specs):
        with pytest.raises(ValueError, match="duplicate"):
            CompileService(fabric=cluster.partition).compile_many(
                specs + [specs[0]])


class TestPersistedReload:
    def test_persisted_artifacts_bit_identical(self, tmp_path, cluster,
                                               specs, fresh):
        db = BitstreamDB(cluster.footprint)
        for app in fresh.values():
            db.register(app)
        path = tmp_path / "db.json"
        save_bitstream_db(db, path)
        reloaded = load_bitstream_db(path, cluster.footprint)
        for spec in specs:
            assert reloaded.lookup(spec.name).to_json() \
                == fresh[spec.name].to_json()

    def test_disk_cache_feeds_fresh_service(self, tmp_path, cluster,
                                            specs, fresh):
        """A second process (fresh cache over the same directory) gets
        the artifacts without compiling."""
        CompileService(fabric=cluster.partition,
                       cache=CompileCache(cache_dir=tmp_path)) \
            .compile_many(specs)
        cache = CompileCache(cache_dir=tmp_path)
        service = CompileService(fabric=cluster.partition, cache=cache)
        apps = service.compile_many(specs)
        assert cache.stats()["disk_hits"] == len(specs)
        assert cache.stats()["misses"] == 0
        for spec in specs:
            assert apps[spec.name].to_json() \
                == fresh[spec.name].to_json()
