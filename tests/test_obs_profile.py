"""Tests for the phase profiler (repro.obs.profile)."""

import json

import pytest

from repro.analysis.diff import (diff_profiles, find_regressions,
                                 load_diff_input)
from repro.obs.profile import PhaseProfiler
from repro.obs.tracer import Tracer
from repro.runtime.controller import SystemController
from repro.sim.experiment import run_experiment
from repro.sim.workload import WorkloadGenerator


def fake_clock(ticks):
    """A deterministic clock: pops the next reading per call."""
    it = iter(ticks)
    return lambda: next(it)


class TestAccumulation:
    def test_phase_context_manager_measures_wall(self):
        prof = PhaseProfiler(clock=fake_clock([0.0, 1.0, 3.5]))
        with prof.phase("work"):
            pass
        doc = prof.as_profile()
        assert doc["spans"]["work"]["count"] == 1
        assert doc["spans"]["work"]["total_s"] == pytest.approx(2.5)

    def test_add_accumulates_counts_and_means(self):
        prof = PhaseProfiler()
        prof.add("admit", 0.5)
        prof.add("admit", 1.5)
        span = prof.as_profile()["spans"]["admit"]
        assert span["count"] == 2
        assert span["total_s"] == pytest.approx(2.0)
        assert span["mean_s"] == pytest.approx(1.0)

    def test_phase_records_on_exception(self):
        prof = PhaseProfiler(clock=fake_clock([0.0, 1.0, 2.0]))
        with pytest.raises(RuntimeError):
            with prof.phase("doomed"):
                raise RuntimeError("boom")
        assert prof.as_profile()["spans"]["doomed"]["count"] == 1

    def test_nested_excluded_from_top_wall(self):
        prof = PhaseProfiler()
        prof.add("outer", 4.0)
        prof.add("inner", 3.0, nested=True)
        assert prof.top_wall_s() == pytest.approx(4.0)

    def test_sim_time_advances_makespan(self):
        prof = PhaseProfiler()
        prof.add("admit", 0.1, sim_t=12.0)
        prof.mark_sim(40.0)
        prof.add("admit", 0.1, sim_t=25.0)
        assert prof.sim_makespan_s == pytest.approx(40.0)
        assert prof.as_profile()["spans"]["admit"]["sim_t"] \
            == pytest.approx(25.0)

    def test_counters(self):
        prof = PhaseProfiler()
        prof.count("deploys")
        prof.count("deploys", 2)
        assert prof.counters() == {"deploys": 3}


class TestTracerSink:
    def test_folds_policy_and_migration_telemetry(self):
        prof = PhaseProfiler()
        tracer = Tracer(retain=False)
        prof.attach_tracer(tracer)
        tracer.event("policy.allocate", t=1.0, rounds=2, visited=10,
                     pruned=4)
        tracer.event("ctrl.reject", t=2.0,
                     search=("no-fit", 3, 7, 2))
        tracer.event("ctrl.migrate", t=3.0, blocks=5)
        tracer.event("defrag.pass", t=4.0, moves=1, moved_blocks=5)
        tracer.event("ctrl.deploy", t=5.0)
        counters = prof.counters()
        assert counters["policy_searches"] == 2
        assert counters["policy_visited"] == 17
        assert counters["policy_pruned"] == 6
        assert counters["migrations"] == 1
        # blocks come from ctrl.migrate only; defrag.pass must not
        # double-charge them
        assert counters["blocks_moved"] == 5
        assert counters["defrag_passes"] == 1
        assert counters["deploys"] == 1

    def test_reattach_same_tracer_is_idempotent(self):
        prof = PhaseProfiler()
        tracer = Tracer(retain=False)
        prof.attach_tracer(tracer)
        prof.attach_tracer(tracer)
        tracer.event("ctrl.deploy", t=0.0)
        assert prof.counters()["deploys"] == 1


class TestExport:
    def test_json_is_sorted_and_stable(self):
        prof = PhaseProfiler()
        prof.add("b", 1.0)
        prof.add("a", 2.0)
        prof.count("x")
        text = prof.to_json()
        assert text == json.dumps(json.loads(text), sort_keys=True,
                                  indent=2)
        assert list(prof.as_profile()["spans"]) == ["a", "b"]

    def test_diff_tool_consumes_profile(self, tmp_path):
        base = PhaseProfiler()
        base.add("compile", 1.0)
        base.count("deploys", 10)
        cand = PhaseProfiler()
        cand.add("compile", 1.0)
        cand.count("deploys", 10)
        p1 = base.dump(tmp_path / "base.json")
        p2 = cand.dump(tmp_path / "cand.json")
        kind1, doc1 = load_diff_input(p1)
        kind2, doc2 = load_diff_input(p2)
        assert kind1 == kind2 == "profile"
        diff = diff_profiles(doc1, doc2)
        assert find_regressions(diff) == []

    def test_regression_shows_up_in_diff(self):
        base = PhaseProfiler()
        for _ in range(20):
            base.add("simulate", 0.1)
        cand = PhaseProfiler()
        for _ in range(20):
            cand.add("simulate", 1.0)
        diff = diff_profiles(base.as_profile(), cand.as_profile())
        assert any("simulate" in r
                   for r in find_regressions(diff))

    def test_format_mentions_phases_and_counters(self):
        prof = PhaseProfiler()
        prof.add("compile", 2.0)
        prof.add("admit", 0.5, nested=True)
        prof.count("deploys", 3)
        text = prof.format()
        assert "compile" in text
        assert "admit*" in text
        assert "deploys" in text


@pytest.fixture(scope="module")
def bench_apps(cluster):
    from repro.sim.experiment import compile_benchmarks
    return compile_benchmarks(cluster)


class TestExperimentIntegration:
    @pytest.fixture()
    def requests(self):
        return WorkloadGenerator(seed=3).generate(
            7, num_requests=12, mean_interarrival_s=2.0)

    def test_profiled_run_matches_unprofiled(self, cluster,
                                             bench_apps, requests):
        from dataclasses import asdict
        plain = run_experiment(SystemController(cluster), requests,
                               bench_apps)
        prof = PhaseProfiler()
        profiled = run_experiment(SystemController(cluster), requests,
                                  bench_apps, profile=prof)
        assert asdict(plain.summary) == asdict(profiled.summary)

    def test_event_loop_phases_and_counters(self, cluster,
                                            bench_apps, requests):
        prof = PhaseProfiler()
        run_experiment(SystemController(cluster), requests,
                       bench_apps, profile=prof)
        doc = prof.as_profile()
        assert doc["spans"]["sim.admit"]["nested"] is True
        assert doc["spans"]["sim.finalize"]["count"] == 1
        counters = doc["decisions"]
        # every request arrives and completes: 2 events each
        assert counters["events_popped"] == 2 * len(requests)
        assert counters["deploys"] == len(requests)
        assert counters["policy_searches"] >= len(requests)
        assert doc["sim_makespan_s"] > 0

    def test_phase_totals_cover_measured_wall(self, cluster,
                                              bench_apps, requests):
        # the acceptance criterion: wrapping the whole run in
        # top-level phases accounts for >=95% of the measured wall
        prof = PhaseProfiler()
        with prof.phase("experiment"):
            run_experiment(SystemController(cluster), requests,
                           bench_apps, profile=prof)
        total = prof.total_wall_s()
        assert total > 0
        assert prof.top_wall_s() >= 0.95 * total
