"""End-to-end integration tests across all four layers."""

import pytest

from repro import ViTALStack, benchmark, make_cluster
from repro.compiler.relocation import Relocator
from repro.runtime.isolation import verify_isolation
from repro.sim.experiment import run_experiment
from repro.sim.workload import WorkloadGenerator


class TestCompileOnceDeployAnywhere:
    """The thesis: one compilation serves every placement."""

    def test_same_app_lands_on_different_boards(self, cluster):
        stack = ViTALStack(cluster=cluster)
        spec = benchmark("alexnet", "M")
        app = stack.compile(spec)
        boards_seen = set()
        live = []
        while (d := stack.deploy(app)) is not None:
            boards_seen.update(d.placement.boards)
            live.append(d)
        assert len(boards_seen) == cluster.num_boards
        for d in live:
            stack.release(d)

    def test_images_relocate_across_all_cluster_blocks(self, cluster,
                                                       compiled_small):
        relocator = Relocator()
        image = compiled_small.images[0]
        for address in cluster.all_addresses():
            relocator.relocate(image, cluster.block_at(address))

    def test_placement_changes_between_deployments(self, cluster):
        stack = ViTALStack(cluster=cluster)
        app = stack.compile(benchmark("lenet5", "S"))
        blocker = stack.deploy(app)
        d1 = stack.deploy(app)
        addr1 = set(d1.placement.addresses)
        stack.release(d1)
        d2 = stack.deploy(app)  # blocker still holds d? blocks
        # same bitstream, potentially different physical blocks --
        # and never the blocker's blocks
        assert set(d2.placement.addresses).isdisjoint(
            set(blocker.placement.addresses))
        stack.release(d2)
        stack.release(blocker)
        assert addr1  # sanity


class TestMultiTenantChurn:
    def test_isolation_through_full_workload(self, cluster,
                                             compiled_apps):
        """Replay a real workload set and re-verify isolation at the
        end (the simulator exercises deploy/release hundreds of
        times)."""
        from repro.runtime.controller import SystemController
        gen = WorkloadGenerator(seed=9)
        requests = [
            r for r in gen.generate(7, num_requests=40,
                                    mean_interarrival_s=2.0)
            if r.spec.name in compiled_apps]
        manager = SystemController(cluster)
        result = run_experiment(manager, requests, compiled_apps)
        assert all(r.finished for r in result.records)
        verify_isolation(manager)
        assert manager.busy_blocks() == 0

    def test_memory_clean_after_churn(self, cluster, compiled_medium):
        stack = ViTALStack(cluster=cluster)
        for _ in range(5):
            live = []
            while (d := stack.deploy(compiled_medium)) is not None:
                live.append(d)
            for d in live:
                stack.release(d)
        for memory in stack.controller.memories.values():
            assert memory.used_bytes() == 0


class TestScaleOutAcceleration:
    def test_app_larger_than_one_board_runs(self, cluster):
        """Scale-out: an app that cannot fit any single FPGA's free
        space still deploys by spanning boards -- the capability no
        baseline has."""
        stack = ViTALStack(cluster=cluster)
        big = stack.compile(benchmark("svhn", "L"))
        filler = stack.compile(benchmark("resnet18", "M"))
        live = []
        # leave only fragments on each board
        while (d := stack.deploy(filler)) is not None:
            live.append(d)
        # free a few fragments on different boards
        for d in live[:2]:
            stack.release(d)
        d_big = stack.deploy(big)
        if d_big is not None:
            assert d_big.num_blocks == big.num_blocks
            stack.check_isolation()
            stack.release(d_big)
        for d in live[2:]:
            stack.release(d)

    def test_spanning_deployment_overhead_tiny(self, cluster):
        stack = ViTALStack(cluster=cluster)
        app = stack.compile(benchmark("svhn", "L"))
        small = stack.compile(benchmark("mlp-mnist", "S"))
        live = []
        while (d := stack.deploy(small)) is not None:
            live.append(d)
        # free 10 blocks split across two boards
        freed = 0
        for d in live:
            if freed >= 10:
                break
            stack.release(d)
            live.remove(d)
            freed += d.num_blocks
        d_big = stack.deploy(app)
        if d_big is not None and d_big.spans_boards:
            assert d_big.latency_overhead_fraction < 3e-4  # <0.03%
            stack.release(d_big)


class TestFreshClusterFactory:
    def test_two_boards(self):
        cluster = make_cluster(num_boards=2)
        stack = ViTALStack(cluster=cluster)
        d = stack.deploy(benchmark("cifar10", "S"))
        assert d is not None
        stack.release(d)
