"""End-to-end observability: determinism, zero overhead, coverage.

The ISSUE's acceptance criteria, as tests:

- a seeded run traced twice produces byte-identical JSONL;
- summaries with tracing enabled equal summaries with tracing off
  (the tracer only observes);
- in a fault-injected run every deploy / release / evict / recover
  decision appears in the trace with a machine-readable reason;
- the compiler emits one span per flow stage and now reports its
  measured wall time instead of discarding it;
- the metrics registry agrees with the summary it was fed from.
"""

import pytest

from repro.analysis.spans import (decision_summary, format_trace_summary,
                                  load_trace_events, span_summary)
from repro.compiler.flow import CompilationFlow
from repro.faults.schedule import BoardDown, BoardUp, FaultSchedule
from repro.hls.kernels import benchmark
from repro.obs import MetricsRegistry, Tracer
from repro.runtime.controller import SystemController
from repro.sim.experiment import run_experiment
from repro.sim.workload import Request, WorkloadGenerator


@pytest.fixture(scope="module")
def requests(compiled_small, compiled_medium, compiled_large):
    specs = [compiled_small.spec, compiled_medium.spec,
             compiled_large.spec]
    return [Request(request_id=i, spec=specs[i % 3],
                    arrival_s=1.0 + 2.0 * i)
            for i in range(24)]


FAULTS = FaultSchedule([
    BoardDown(time_s=15.0, board=1),
    BoardUp(time_s=70.0, board=1),
])


class TestDeterminism:
    def test_traced_run_is_byte_identical(self, cluster, requests,
                                          compiled_apps):
        def run():
            tracer = Tracer()
            run_experiment(SystemController(cluster), requests,
                           compiled_apps, tracer=tracer)
            return tracer.to_jsonl()
        first, second = run(), run()
        assert first == second
        assert first  # non-empty

    def test_tracing_does_not_change_results(self, cluster, requests,
                                             compiled_apps):
        plain = run_experiment(SystemController(cluster), requests,
                               compiled_apps)
        traced = run_experiment(SystemController(cluster), requests,
                                compiled_apps, tracer=Tracer(),
                                metrics=MetricsRegistry())
        assert traced.summary == plain.summary

    def test_disabled_tracer_records_nothing(self, cluster, requests,
                                             compiled_apps):
        tracer = Tracer(enabled=False)
        run_experiment(SystemController(cluster), requests,
                       compiled_apps, tracer=tracer)
        assert len(tracer) == 0


class TestDecisionCoverage:
    @pytest.fixture(scope="class")
    def fault_trace(self, cluster, requests, compiled_apps):
        tracer = Tracer()
        run_experiment(SystemController(cluster), requests,
                       compiled_apps, tracer=tracer, faults=FAULTS,
                       recovery="migrate-on-failure")
        return list(tracer.entries())

    def test_every_decision_has_a_reason(self, fault_trace):
        decided = [e for e in fault_trace
                   if e["name"] in ("ctrl.deploy", "ctrl.reject",
                                    "ctrl.release", "ctrl.evict",
                                    "ctrl.recover", "sim.evict")]
        assert decided
        for entry in decided:
            reason = entry["fields"]["reason"]
            assert isinstance(reason, str) and reason
            assert " " not in reason  # machine-readable slug

    def test_fault_lifecycle_present(self, fault_trace):
        names = {e["name"] for e in fault_trace}
        assert {"ctrl.board_fail", "ctrl.evict", "sim.fault",
                "sim.evict", "ctrl.board_repair"} <= names
        # migrate-on-failure: evictions recover via redeployment
        recovered = [e for e in fault_trace
                     if e["name"] == "ctrl.recover"]
        assert all(e["fields"]["reason"] == "migrated"
                   for e in recovered)

    def test_deploys_match_completions(self, fault_trace, requests):
        completes = [e for e in fault_trace
                     if e["name"] == "sim.complete"]
        assert len(completes) == len(requests)
        deploys = [e for e in fault_trace if e["name"] == "sim.deploy"]
        assert len(deploys) >= len(requests)

    def test_policy_search_telemetry(self, fault_trace):
        allocs = [e for e in fault_trace
                  if e["name"] == "policy.allocate"
                  and e["fields"].get("found")]
        assert allocs
        for entry in allocs:
            fields = entry["fields"]
            assert fields["rounds"] >= 1
            assert fields["visited"] >= 1
            assert fields["pruned"] >= 0

    def test_timestamps_are_sim_times(self, fault_trace):
        ts = [e["t"] for e in fault_trace]
        assert ts == sorted(ts)
        assert ts[-1] > 15.0  # past the fault window


class TestCompileSpans:
    def test_six_stage_spans_and_measured_wall(self, cluster):
        tracer = Tracer()
        flow = CompilationFlow(fabric=cluster.partition, tracer=tracer)
        app = flow.compile(benchmark("mlp-mnist", "S"))
        spans = [e for e in tracer.entries() if e["kind"] == "span"]
        assert [s["name"] for s in spans] == [
            "compile.synthesis", "compile.partition",
            "compile.interface_gen", "compile.local_pnr",
            "compile.relocation_check", "compile.global_pnr"]
        for span in spans:
            assert span["duration_s"] > 0  # modeled stage time
            assert span["fields"]["app"] == "mlp-mnist-S"
        # the satellite fix: measured wall time is kept, not discarded
        assert app.breakdown.measured_wall_s > 0

    def test_wall_fields_only_when_opted_in(self, cluster):
        quiet = Tracer()
        flow = CompilationFlow(fabric=cluster.partition, tracer=quiet)
        flow.compile(benchmark("mlp-mnist", "S"))
        assert all("wall_s" not in e.get("fields", {})
                   for e in quiet.entries())
        wall = Tracer(record_wall=True)
        flow = CompilationFlow(fabric=cluster.partition, tracer=wall)
        flow.compile(benchmark("mlp-mnist", "S"))
        spans = [e for e in wall.entries() if e["kind"] == "span"]
        assert all(e["fields"]["wall_s"] >= 0 for e in spans)


class TestMetricsIntegration:
    def test_registry_agrees_with_summary(self, cluster, requests,
                                          compiled_apps):
        registry = MetricsRegistry()
        result = run_experiment(SystemController(cluster), requests,
                                compiled_apps, metrics=registry)
        label = {"manager": "vital"}
        assert registry.counter("requests_total", **label) \
            .snapshot() == len(requests)
        assert registry.counter("completions_total", **label) \
            .snapshot() == result.summary.num_requests
        assert registry.gauge("block_utilization", **label) \
            .snapshot() == pytest.approx(
                result.summary.block_utilization)
        waits = registry.histogram("wait_seconds", **label)
        assert waits.count == len(requests)
        assert waits.sum / waits.count == pytest.approx(
            result.summary.mean_wait_s)

    def test_prometheus_export_contains_both_layers(self, cluster,
                                                    requests,
                                                    compiled_apps):
        registry = MetricsRegistry()
        run_experiment(SystemController(cluster), requests,
                       compiled_apps, metrics=registry)
        text = registry.to_prometheus()
        # event-loop counters and collector-fed gauges/histograms
        assert 'deploys_total{manager="vital"}' in text
        assert 'block_utilization{manager="vital"}' in text
        assert 'reconfig_seconds_bucket{manager="vital",le="+Inf"}' \
            in text


class TestSpanViewer:
    @pytest.fixture(scope="class")
    def trace_path(self, cluster, requests, compiled_apps,
                   tmp_path_factory):
        tracer = Tracer()
        run_experiment(SystemController(cluster), requests,
                       compiled_apps, tracer=tracer, faults=FAULTS,
                       recovery="migrate-on-failure")
        path = tmp_path_factory.mktemp("obs") / "trace.jsonl"
        tracer.dump(path)
        return path

    def test_load_round_trips(self, trace_path):
        events = load_trace_events(trace_path)
        assert events[0]["seq"] == 0
        assert all("name" in e and "t" in e for e in events)

    def test_load_rejects_malformed(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"name": "a", "t": 0}\nnot json\n')
        with pytest.raises(ValueError, match="not valid JSON"):
            load_trace_events(bad)
        missing = tmp_path / "missing.jsonl"
        missing.write_text('{"x": 1}\n')
        with pytest.raises(ValueError, match="not a trace entry"):
            load_trace_events(missing)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("\n")
        with pytest.raises(ValueError, match="empty trace"):
            load_trace_events(empty)

    def test_decision_summary_accounts_run(self, trace_path, requests):
        events = load_trace_events(trace_path)
        decisions = decision_summary(events)
        assert decisions["deploys"] >= len(requests)
        assert decisions["faults"] == 2  # BoardDown + BoardUp
        assert decisions["allocator_calls"] > 0
        assert decisions["response_p95_s"] >= decisions["response_p50_s"]

    def test_span_summary_counts(self, trace_path):
        events = load_trace_events(trace_path)
        rows = {r["name"]: r for r in span_summary(events)}
        assert rows["sim.arrival"]["count"] == 24

    def test_format_trace_summary_renders(self, trace_path):
        events = load_trace_events(trace_path)
        text = format_trace_summary(events)
        assert "spans & events" in text
        assert "decisions" in text
        assert "allocator calls" in text


class TestGeneratedWorkload:
    def test_seeded_generator_run_reproduces(self, cluster,
                                             compiled_apps):
        """The CLI path: generator + tracer, byte-stable end to end."""
        specs = {name for name in compiled_apps}

        def run():
            workload = [
                r for r in WorkloadGenerator(seed=11).generate(
                    7, num_requests=40)
                if r.spec.name in specs]
            tracer = Tracer()
            run_experiment(SystemController(cluster), workload,
                           compiled_apps, tracer=tracer)
            return tracer.to_jsonl()
        assert run() == run()
