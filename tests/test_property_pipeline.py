"""Property-based fuzzing of the full compile-and-deploy pipeline.

Random kernel footprints (within the cluster pool) must always compile to
valid artifacts, deploy without violating any invariant, and tear down
cleanly -- across the whole span from single-block LUT-only kernels to
BRAM-heavy multi-board monsters.
"""

import pytest
from hypothesis import HealthCheck, example, given, settings, \
    strategies as st

from repro.compiler.flow import CompilationFlow
from repro.compiler.partitioner import blocks_for
from repro.core.programming import custom_kernel
from repro.runtime.controller import SystemController
from repro.runtime.isolation import verify_isolation

kernel_footprints = st.tuples(
    st.floats(min_value=5e3, max_value=280e3),    # lut
    st.floats(min_value=5e3, max_value=280e3),    # dff
    st.floats(min_value=0, max_value=550),        # dsp
    st.floats(min_value=0.2, max_value=30.0),     # bram
    st.integers(min_value=0, max_value=10_000),   # name salt
)


@settings(max_examples=10, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(footprint=kernel_footprints)
def test_random_kernel_full_pipeline(footprint, cluster):
    lut, dff, dsp, bram, salt = footprint
    spec = custom_kernel(f"fuzz-{salt}", lut=lut, dff=dff, dsp=dsp,
                         bram_mb=bram, service_time_s=10.0)
    flow = CompilationFlow(fabric=cluster.partition, seed=salt % 7)
    app = flow.compile(spec)
    app.validate()

    expected = blocks_for(spec.resources,
                          cluster.partition.block_capacity)
    assert expected <= app.num_blocks <= expected + 2
    assert app.fmax_mhz >= 250.0
    assert app.interface.verify_deadlock_free()

    controller = SystemController(cluster)
    deployment = controller.try_deploy(app, 0, 0.0)
    assert deployment is not None, "empty cluster must admit any kernel"
    assert deployment.num_blocks == app.num_blocks
    verify_isolation(controller)
    # communication overhead is bounded even for spanning placements
    assert deployment.latency_overhead_fraction < 0.05
    controller.release(deployment)
    assert controller.busy_blocks() == 0
    for memory in controller.memories.values():
        assert memory.used_bytes() == 0


@settings(max_examples=6, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(footprints=st.lists(kernel_footprints, min_size=2, max_size=5))
# regression: a BRAM-heavy, LUT-light kernel once produced a single
# macro carrying more BRAM than a whole physical block (hypothesis-found)
@example(footprints=[(5000.0, 5000.0, 0.0, 10.0, 0),
                     (5000.0, 5000.0, 0.0, 1.0, 0)])
def test_random_kernel_mix_coexists(footprints, cluster):
    """Several random tenants pack together without interference."""
    flow = CompilationFlow(fabric=cluster.partition)
    controller = SystemController(cluster)
    live = []
    for rid, (lut, dff, dsp, bram, salt) in enumerate(footprints):
        spec = custom_kernel(f"mix-{salt}-{rid}", lut=lut, dff=dff,
                             dsp=dsp, bram_mb=bram)
        app = flow.compile(spec)
        deployment = controller.try_deploy(app, rid, 0.0)
        if deployment is not None:
            live.append(deployment)
        verify_isolation(controller)
    assert live  # at least the first kernel fits an empty cluster
    total_blocks = sum(d.num_blocks for d in live)
    assert controller.busy_blocks() == total_blocks
    for deployment in live:
        controller.release(deployment)
    assert controller.busy_blocks() == 0
