"""Tests for links, FIFOs, channels and the dataflow-firing simulator."""

import pytest
from hypothesis import given, strategies as st

from repro.interconnect.channel import Channel
from repro.interconnect.fifo import BoundedFifo, CreditCounter
from repro.interconnect.links import LINKS, LinkClass, SHELL_CLOCK_MHZ
from repro.interconnect.simulator import (
    BlockNode,
    TrafficSimulator,
    measure_channel_bandwidth,
    random_traffic_experiment,
)


class TestLinks:
    def test_three_classes(self):
        assert set(LINKS) == set(LinkClass)

    def test_inter_fpga_is_100gbps(self):
        assert LINKS[LinkClass.INTER_FPGA].bandwidth_gbps == 100.0

    def test_inter_die_is_312gbps(self):
        assert LINKS[LinkClass.INTER_DIE].bandwidth_gbps == 312.5

    def test_bits_per_cycle(self):
        link = LINKS[LinkClass.INTER_FPGA]
        assert link.bits_per_cycle \
            == pytest.approx(100e3 / SHELL_CLOCK_MHZ)

    def test_latency_ordering(self):
        assert LINKS[LinkClass.ON_CHIP].latency_cycles \
            < LINKS[LinkClass.INTER_DIE].latency_cycles \
            < LINKS[LinkClass.INTER_FPGA].latency_cycles

    def test_only_inter_fpga_nondeterministic(self):
        assert LINKS[LinkClass.ON_CHIP].deterministic
        assert LINKS[LinkClass.INTER_DIE].deterministic
        assert not LINKS[LinkClass.INTER_FPGA].deterministic

    def test_round_trip_covers_both_directions(self):
        link = LINKS[LinkClass.INTER_FPGA]
        assert link.round_trip_cycles() > 2 * link.latency_cycles


class TestBoundedFifo:
    def test_push_pop_fifo_order(self):
        f = BoundedFifo(4)
        for i in range(3):
            f.push(i)
        assert [f.pop(), f.pop(), f.pop()] == [0, 1, 2]

    def test_overflow_raises(self):
        f = BoundedFifo(1)
        f.push("x")
        with pytest.raises(OverflowError):
            f.push("y")

    def test_underflow_raises(self):
        with pytest.raises(IndexError):
            BoundedFifo(1).pop()

    def test_peek_nondestructive(self):
        f = BoundedFifo(2)
        f.push("a")
        assert f.peek() == "a" and len(f) == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BoundedFifo(0)

    @given(st.lists(st.integers(), max_size=50))
    def test_fifo_preserves_order(self, items):
        f = BoundedFifo(max(1, len(items)))
        for item in items:
            f.push(item)
        assert [f.pop() for _ in items] == items


class TestCreditCounter:
    def test_consume_restore_cycle(self):
        c = CreditCounter(2)
        c.consume()
        c.consume()
        assert not c.can_send()
        c.restore()
        assert c.can_send()

    def test_consume_at_zero_raises(self):
        c = CreditCounter(1)
        c.consume()
        with pytest.raises(RuntimeError, match="protocol bug"):
            c.consume()

    def test_restore_above_initial_raises(self):
        with pytest.raises(RuntimeError, match="protocol bug"):
            CreditCounter(1).restore()

    @given(st.lists(st.booleans(), max_size=100))
    def test_invariant_zero_to_initial(self, ops):
        c = CreditCounter(5)
        for consume in ops:
            if consume and c.can_send():
                c.consume()
            elif not consume and c.available < c.initial:
                c.restore()
            assert 0 <= c.available <= c.initial


class TestChannel:
    def test_latency_respected(self):
        ch = Channel("c", LinkClass.INTER_DIE, fifo_depth=8)
        ch.send(0, payload="p")
        ch.step(3)   # latency is 4: not yet delivered
        assert not ch.has_data()
        ch.step(4)
        assert ch.has_data()
        assert ch.receive(4) == "p"

    def test_credits_block_when_receiver_full(self):
        ch = Channel("c", LinkClass.ON_CHIP, fifo_depth=2)
        for cycle in range(2):
            assert ch.can_accept()
            ch.send(cycle)
        assert not ch.can_accept()

    def test_credit_returns_after_drain(self):
        ch = Channel("c", LinkClass.ON_CHIP, fifo_depth=1)
        ch.send(0)
        ch.step(1)
        ch.receive(1)
        assert not ch.can_accept()   # credit still in flight
        ch.step(2)
        assert ch.can_accept()

    def test_init_tokens_preloaded(self):
        ch = Channel("c", LinkClass.ON_CHIP, fifo_depth=4, init_tokens=2)
        assert ch.has_data()
        assert ch.receive(0) is None  # init token carries no payload

    def test_init_tokens_capped_by_depth(self):
        with pytest.raises(ValueError):
            Channel("c", LinkClass.ON_CHIP, fifo_depth=2, init_tokens=3)

    def test_mean_latency_counts_real_flits(self):
        ch = Channel("c", LinkClass.ON_CHIP, fifo_depth=4, init_tokens=1)
        ch.receive(0)                  # drain the init token
        ch.send(0, payload="x")
        ch.step(1)
        ch.receive(1)
        assert ch.mean_latency_cycles() == pytest.approx(1.0)


class TestTable4Bandwidth:
    """Benchmark set 1: the maximum bandwidth of the LI interface."""

    @pytest.mark.parametrize("link", list(LinkClass))
    def test_saturates_link_capacity(self, link):
        # window long enough that the pipeline-fill transient (one link
        # latency) is amortized below the tolerance
        cycles = 200 * LINKS[link].round_trip_cycles()
        bw, _ = measure_channel_bandwidth(link, cycles=cycles)
        assert bw == pytest.approx(LINKS[link].bandwidth_gbps, rel=0.03)

    def test_shallow_fifo_limits_throughput(self):
        link = LINKS[LinkClass.INTER_FPGA]
        bw, _ = measure_channel_bandwidth(LinkClass.INTER_FPGA,
                                          fifo_depth=64, cycles=5000)
        expected = link.bandwidth_gbps * 64 / link.round_trip_cycles()
        assert bw == pytest.approx(expected, rel=0.10)

    def test_latency_matches_link(self):
        _, lat = measure_channel_bandwidth(LinkClass.INTER_FPGA,
                                           cycles=3000)
        assert lat >= LINKS[LinkClass.INTER_FPGA].latency_cycles

    def test_offered_load_sweep_monotone(self):
        results = random_traffic_experiment(
            LinkClass.INTER_DIE, rates=[0.25, 0.5, 1.0], cycles=4000)
        accepted = [r.accepted_gbps for r in results]
        assert accepted[0] < accepted[1] < accepted[2]
        assert results[-1].saturation > 0.95


class TestDeadlockBehavior:
    def test_token_less_cycle_deadlocks(self):
        sim = TrafficSimulator()
        a = sim.add_node(BlockNode("a"))
        b = sim.add_node(BlockNode("b"))
        sim.connect(a, b, Channel("ab", LinkClass.ON_CHIP, fifo_depth=8))
        sim.connect(b, a, Channel("ba", LinkClass.ON_CHIP, fifo_depth=8))
        assert sim.deadlocked()

    def test_initialized_cycle_progresses(self):
        sim = TrafficSimulator()
        a = sim.add_node(BlockNode("a"))
        b = sim.add_node(BlockNode("b"))
        sim.connect(a, b, Channel("ab", LinkClass.ON_CHIP, fifo_depth=8))
        sim.connect(b, a, Channel("ba", LinkClass.ON_CHIP, fifo_depth=8,
                                  init_tokens=4))
        assert not sim.deadlocked()

    def test_pipeline_throughput_near_one(self):
        sim = TrafficSimulator()
        src = sim.add_node(BlockNode("src", is_source=True))
        mid = sim.add_node(BlockNode("mid"))
        dst = sim.add_node(BlockNode("dst", is_sink=True))
        sim.connect(src, mid,
                    Channel("a", LinkClass.ON_CHIP, fifo_depth=8))
        sim.connect(mid, dst,
                    Channel("b", LinkClass.ON_CHIP, fifo_depth=8))
        sim.run(2000)
        assert mid.utilization() > 0.95

    def test_backpressure_propagates_upstream(self):
        """A rate-limited sink throttles the whole pipeline losslessly."""
        sim = TrafficSimulator()
        src = sim.add_node(BlockNode("src", is_source=True))
        dst = sim.add_node(BlockNode("dst", is_sink=True, rate=0.25,
                                     seed=3))
        ch = sim.connect(src, dst,
                         Channel("a", LinkClass.ON_CHIP, fifo_depth=4))
        sim.run(4000)
        assert src.fired == pytest.approx(dst.fired, abs=8)
        assert src.fired < 0.35 * 4000   # throttled well below full rate
        assert ch.sent - ch.consumed <= ch.rx_fifo.capacity + 1

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            BlockNode("x", rate=0)
