"""Tests for the scenario-campaign service (repro.sim.campaign)."""

import dataclasses
import json

import pytest

from repro.obs.tracer import Tracer
from repro.sim import campaign as campaign_mod
from repro.sim.campaign import (CAMPAIGN_VERSION, FAULT_PROFILES,
                                CampaignCache, CampaignConfig,
                                CampaignRunner, campaign_fingerprint,
                                canonical_json, extended_grid,
                                run_config, smoke_grid, standard_grid)


@pytest.fixture(scope="module")
def apps():
    from repro.cluster.cluster import make_cluster
    from repro.sim.experiment import compile_benchmarks
    return compile_benchmarks(make_cluster(num_boards=1))


def tiny(name="tiny", **overrides):
    overrides.setdefault("num_requests", 6)
    return CampaignConfig(name=name, **overrides)


class TestConfig:
    def test_round_trips_through_dict(self):
        config = tiny(fault_profile="rack-outage", defrag=True,
                      slo_rules=("p95_response_s < 600",))
        assert CampaignConfig.from_dict(config.as_dict()) == config

    def test_rejects_unknown_axes(self):
        with pytest.raises(ValueError, match="load pattern"):
            tiny(load_pattern="square-wave")
        with pytest.raises(ValueError, match="fault profile"):
            tiny(fault_profile="meteor")
        with pytest.raises(ValueError, match="discipline"):
            tiny(discipline="lifo")
        with pytest.raises(ValueError, match="recovery"):
            tiny(recovery="pray")

    def test_rejects_device_count_mismatch(self):
        with pytest.raises(ValueError, match="devices"):
            tiny(num_boards=4, devices=("XCVU37P",))

    def test_from_dict_rejects_unknown_fields(self):
        doc = tiny().as_dict()
        doc["warp_factor"] = 9
        with pytest.raises(ValueError, match="warp_factor"):
            CampaignConfig.from_dict(doc)


class TestFingerprint:
    def test_stable_for_equal_configs(self):
        assert campaign_fingerprint(tiny()) \
            == campaign_fingerprint(tiny())

    def test_name_is_a_label_not_an_input(self):
        assert campaign_fingerprint(tiny(name="a")) \
            == campaign_fingerprint(tiny(name="b"))

    @pytest.mark.parametrize("overrides", [
        {"num_boards": 16}, {"seed": 8}, {"num_requests": 7},
        {"load_pattern": "diurnal"}, {"fault_profile": "rack-outage"},
        {"defrag": True}, {"guard": True},
        {"discipline": "backfill"}, {"max_boards": 2},
        {"slo_rules": ("p95_response_s < 600",)},
        {"mean_interarrival_s": 2.5}, {"boards_per_rack": 2},
    ])
    def test_every_axis_changes_the_fingerprint(self, overrides):
        assert campaign_fingerprint(tiny(**overrides)) \
            != campaign_fingerprint(tiny())

    def test_campaign_version_bump_invalidates(self, monkeypatch):
        before = campaign_fingerprint(tiny())
        monkeypatch.setattr(campaign_mod, "CAMPAIGN_VERSION",
                            CAMPAIGN_VERSION + "-next")
        assert campaign_fingerprint(tiny()) != before

    def test_fault_preset_knobs_are_covered(self, monkeypatch):
        config = tiny(fault_profile="rack-outage")
        before = campaign_fingerprint(config)
        knobs = dict(FAULT_PROFILES["rack-outage"],
                     rack_mtbf_s=1.0)
        monkeypatch.setitem(FAULT_PROFILES, "rack-outage", knobs)
        assert campaign_fingerprint(config) != before


class TestCache:
    def test_miss_then_hit(self):
        cache = CampaignCache()
        assert cache.get("f" * 64) is None
        cache.put("f" * 64, {"x": 1})
        assert cache.get("f" * 64) == {"x": 1}
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_get_returns_fresh_copies(self):
        cache = CampaignCache()
        cache.put("a" * 64, {"x": [1, 2]})
        cache.get("a" * 64)["x"].append(3)
        assert cache.get("a" * 64) == {"x": [1, 2]}

    def test_disk_tier_round_trip(self, tmp_path):
        cold = CampaignCache(cache_dir=tmp_path)
        cold.put("b" * 64, {"y": 2.5})
        warm = CampaignCache(cache_dir=tmp_path)
        assert warm.get("b" * 64) == {"y": 2.5}
        assert warm.stats()["disk_hits"] == 1

    def test_lru_eviction(self):
        cache = CampaignCache(max_entries=2)
        for i in range(3):
            cache.put(f"{i}" * 64, {"i": i})
        assert cache.stats()["evictions"] == 1
        assert cache.get("0" * 64) is None

    def test_invalidate_drops_memory_and_disk(self, tmp_path):
        cache = CampaignCache(cache_dir=tmp_path)
        cache.put("c" * 64, {"z": 1})
        assert cache.invalidate("c" * 64)
        assert cache.get("c" * 64) is None
        assert not (tmp_path / ("c" * 64 + ".json")).exists()

    def test_hit_miss_trace_events(self):
        tracer = Tracer()
        cache = CampaignCache(tracer=tracer)
        cache.get("d" * 64, name="s1")
        cache.put("d" * 64, {"v": 1})
        cache.get("d" * 64, name="s1")
        entries = list(tracer.entries())
        assert [e["name"] for e in entries] \
            == ["campaign.miss", "campaign.hit"]
        assert entries[1]["fields"]["tier"] == "memory"
        assert entries[1]["fields"]["scenario"] == "s1"


class TestRunConfig:
    def test_deterministic(self, apps):
        config = tiny()
        assert canonical_json(run_config(config, apps=apps)) \
            == canonical_json(run_config(config, apps=apps))

    def test_result_is_canonical_json(self, apps):
        result = run_config(tiny(), apps=apps)
        text = canonical_json(result)
        assert json.loads(text) == result
        assert result["fingerprint"] == campaign_fingerprint(tiny())
        assert result["campaign_version"] == CAMPAIGN_VERSION
        assert result["summary"]["num_requests"] == 6

    def test_fault_profile_injects_faults(self, apps):
        result = run_config(
            tiny(fault_profile="rack-outage", guard=True), apps=apps)
        assert result["fault_events"] > 0

    def test_hetero_config_uses_adapter(self, apps):
        config = tiny(num_boards=2, devices=("XCVU37P", "VU13P"),
                      num_requests=4)
        result = run_config(config, apps=apps)
        assert result["manager"] == "vital-hetero"


class TestRunnerDeterminism:
    """The acceptance criteria: byte-identical across jobs and warm."""

    def test_inline_vs_pool_vs_warm_byte_identical(self, apps):
        configs = smoke_grid(num_requests=6)
        inline = CampaignRunner(cache=CampaignCache(), apps=apps)
        seq = inline.run_many(configs, jobs=1)
        pooled = CampaignRunner(cache=CampaignCache(), apps=apps)
        par = pooled.run_many(configs, jobs=4)
        warm = inline.run_many(configs, jobs=1)
        assert canonical_json(seq) == canonical_json(par)
        assert canonical_json(seq) == canonical_json(warm)
        assert inline.cache.stats()["hits"] == len(configs)

    def test_warm_cache_skips_all_runs(self, apps):
        configs = smoke_grid(num_requests=6)
        runner = CampaignRunner(cache=CampaignCache(), apps=apps)
        runner.run_many(configs)
        runner.last_walls.clear()
        runner.run_many(configs)
        assert runner.last_walls == {}

    def test_disk_warm_restart_byte_identical(self, apps, tmp_path):
        configs = smoke_grid(num_requests=6)
        cold = CampaignRunner(cache=CampaignCache(cache_dir=tmp_path),
                              apps=apps)
        first = cold.run_many(configs)
        warm = CampaignRunner(cache=CampaignCache(cache_dir=tmp_path),
                              apps=apps)
        second = warm.run_many(configs)
        assert canonical_json(first) == canonical_json(second)
        assert warm.cache.stats()["disk_hits"] == len(configs)

    def test_axis_change_misses_the_cache(self, apps):
        runner = CampaignRunner(cache=CampaignCache(), apps=apps)
        runner.run_many([tiny()])
        runner.run_many([tiny(defrag=True)])
        assert runner.cache.stats()["misses"] == 2
        assert runner.cache.stats()["hits"] == 0

    def test_version_bump_misses_the_cache(self, apps, monkeypatch):
        runner = CampaignRunner(cache=CampaignCache(), apps=apps)
        runner.run_many([tiny()])
        monkeypatch.setattr(campaign_mod, "CAMPAIGN_VERSION",
                            CAMPAIGN_VERSION + "-next")
        runner.run_many([tiny()])
        assert runner.cache.stats()["misses"] == 2

    def test_duplicate_names_rejected(self, apps):
        runner = CampaignRunner(apps=apps)
        with pytest.raises(ValueError, match="duplicate"):
            runner.run_many([tiny(name="x"), tiny(name="x")])

    def test_results_merge_in_input_order(self, apps):
        configs = smoke_grid(num_requests=6)
        runner = CampaignRunner(cache=CampaignCache(), apps=apps)
        # warm half the grid first so hits and misses interleave
        runner.run_many(configs[::2])
        results = runner.run_many(configs)
        assert [r["name"] for r in results] \
            == [c.name for c in configs]


class TestGrids:
    def test_standard_grid_is_the_acceptance_matrix(self):
        configs = standard_grid()
        assert len(configs) == 24
        names = [c.name for c in configs]
        assert len(set(names)) == 24
        assert {c.load_pattern for c in configs} \
            == {"poisson", "diurnal", "flash-crowd"}
        assert {c.fault_profile for c in configs} \
            == {"none", "rack-outage"}
        assert {c.defrag for c in configs} == {False, True}
        assert {c.guard for c in configs} == {False, True}

    def test_extended_grid_adds_hetero_and_gray(self):
        configs = extended_grid()
        assert len(configs) > 24
        by_name = {c.name: c for c in configs}
        assert by_name["hetero/mixed-generations"].devices is not None
        assert by_name["gray-icap/guard-on"].fault_profile \
            == "gray-icap"
        assert len({campaign_fingerprint(c) for c in configs}) \
            == len(configs)

    def test_smoke_grid_is_small(self):
        assert 3 <= len(smoke_grid()) <= 6


class TestSummaryShape:
    def test_summary_fields_match_metrics_dataclass(self, apps):
        from repro.sim.metrics import SummaryMetrics
        result = run_config(tiny(), apps=apps)
        expected = {f.name for f in
                    dataclasses.fields(SummaryMetrics)}
        assert set(result["summary"]) == expected


class _FakePool:
    """In-process stand-in for ProcessPoolExecutor: records that the
    pool path was taken and runs the worker protocol inline (same
    initializer + map surface, no fork cost)."""

    created = 0
    last_workers = None

    def __init__(self, max_workers, mp_context=None,
                 initializer=None, initargs=()):
        _FakePool.created += 1
        _FakePool.last_workers = max_workers
        if initializer is not None:
            initializer(*initargs)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def map(self, fn, items):
        return [fn(item) for item in items]


class _PoolBomb:
    """A pool that must never be constructed."""

    def __init__(self, *args, **kwargs):
        raise AssertionError("ProcessPoolExecutor spawned for a sweep "
                             "that should have run inline")


def _grid(n):
    return [CampaignConfig(name=f"pool-{i}", num_requests=6,
                           seed=100 + i) for i in range(n)]


class TestPoolThreshold:
    """The pr9 regression fix: jobs>1 must not pay pool startup for
    sweeps too small (or too warm) to earn it back."""

    def test_small_grid_never_spawns_pool(self, apps, monkeypatch):
        monkeypatch.setattr(campaign_mod, "ProcessPoolExecutor",
                            _PoolBomb)
        monkeypatch.setattr(campaign_mod, "_usable_cpus", lambda: 8)
        configs = _grid(campaign_mod.POOL_MIN_MISSES - 1)
        runner = CampaignRunner(cache=CampaignCache(), apps=apps)
        results = runner.run_many(configs, jobs=4)
        assert len(results) == len(configs)

    def test_warm_sweep_never_spawns_pool(self, apps, monkeypatch):
        configs = _grid(campaign_mod.POOL_MIN_MISSES + 2)
        runner = CampaignRunner(cache=CampaignCache(), apps=apps)
        cold = runner.run_many(configs, jobs=1)
        monkeypatch.setattr(campaign_mod, "ProcessPoolExecutor",
                            _PoolBomb)
        monkeypatch.setattr(campaign_mod, "_usable_cpus", lambda: 8)
        warm = runner.run_many(configs, jobs=4)
        assert canonical_json(cold) == canonical_json(warm)

    def test_single_cpu_box_never_spawns_pool(self, apps, monkeypatch):
        monkeypatch.setattr(campaign_mod, "ProcessPoolExecutor",
                            _PoolBomb)
        monkeypatch.setattr(campaign_mod, "_usable_cpus", lambda: 1)
        configs = _grid(campaign_mod.POOL_MIN_MISSES + 2)
        runner = CampaignRunner(cache=CampaignCache(), apps=apps)
        assert len(runner.run_many(configs, jobs=4)) == len(configs)

    def test_pool_engages_above_threshold_byte_identical(
            self, apps, monkeypatch):
        monkeypatch.setattr(campaign_mod, "ProcessPoolExecutor",
                            _FakePool)
        monkeypatch.setattr(campaign_mod, "_usable_cpus", lambda: 8)
        _FakePool.created = 0
        configs = _grid(campaign_mod.POOL_MIN_MISSES)
        pooled = CampaignRunner(cache=CampaignCache(), apps=apps)
        par = pooled.run_many(configs, jobs=4)
        assert _FakePool.created == 1
        assert _FakePool.last_workers == 4
        assert set(pooled.last_walls) == {c.name for c in configs}
        inline = CampaignRunner(cache=CampaignCache(), apps=apps)
        seq = inline.run_many(configs, jobs=1)
        assert canonical_json(seq) == canonical_json(par)
