"""Tests for workload trace import/export."""

import json

import pytest

from repro.sim.trace import dump_trace, dumps_trace, load_trace, \
    loads_trace
from repro.sim.workload import WorkloadGenerator


@pytest.fixture()
def workload():
    return WorkloadGenerator(seed=5).generate(7, num_requests=25)


class TestRoundTrip:
    def test_in_memory_roundtrip(self, workload):
        restored = loads_trace(dumps_trace(workload))
        assert len(restored) == len(workload)
        for a, b in zip(workload, restored):
            assert a.request_id == b.request_id
            assert a.spec.name == b.spec.name
            assert a.arrival_s == pytest.approx(b.arrival_s)

    def test_file_roundtrip(self, workload, tmp_path):
        path = tmp_path / "trace.json"
        dump_trace(workload, path, metadata={"set": 7})
        restored = load_trace(path)
        assert [r.spec.name for r in restored] \
            == [r.spec.name for r in workload]

    def test_metadata_persisted(self, workload):
        text = dumps_trace(workload, metadata={"note": "hello"})
        assert json.loads(text)["metadata"]["note"] == "hello"

    def test_unsorted_workload_roundtrips(self, workload):
        """Regression: dumps_trace used to serialize requests in list
        order while loads_trace rejects unsorted arrivals -- a legal
        in-memory workload could not round-trip through its own
        serialization.  Export now sorts stably by (arrival, id)."""
        shuffled = list(reversed(workload))
        restored = loads_trace(dumps_trace(shuffled))
        assert [r.request_id for r in restored] \
            == [r.request_id for r in workload]
        arrivals = [r.arrival_s for r in restored]
        assert arrivals == sorted(arrivals)

    def test_sorted_input_serializes_identically(self, workload):
        assert dumps_trace(list(reversed(workload))) \
            == dumps_trace(workload)

    def test_equal_arrivals_tie_break_on_id(self):
        from repro.hls.kernels import benchmark
        from repro.sim.workload import Request
        spec = benchmark("mlp-mnist", "S")
        ties = [Request(request_id=i, spec=spec, arrival_s=5.0)
                for i in (2, 0, 1)]
        restored = loads_trace(dumps_trace(ties))
        assert [r.request_id for r in restored] == [0, 1, 2]

    def test_replayable_through_simulator(self, workload, cluster,
                                          compiled_apps):
        from repro.runtime.controller import SystemController
        from repro.sim.experiment import run_experiment
        restored = [r for r in loads_trace(dumps_trace(workload))
                    if r.spec.name in compiled_apps]
        if not restored:
            pytest.skip("trace contains no precompiled apps")
        result = run_experiment(SystemController(cluster), restored,
                                compiled_apps)
        assert result.summary.num_requests == len(restored)


class TestValidation:
    def test_rejects_foreign_json(self):
        with pytest.raises(ValueError, match="format marker"):
            loads_trace('{"hello": 1}')

    def test_rejects_wrong_version(self, workload):
        payload = json.loads(dumps_trace(workload))
        payload["version"] = 99
        with pytest.raises(ValueError, match="version"):
            loads_trace(json.dumps(payload))

    def test_rejects_unsorted_arrivals(self, workload):
        payload = json.loads(dumps_trace(workload))
        payload["requests"][0]["arrival_s"] = 1e9
        with pytest.raises(ValueError, match="sorted"):
            loads_trace(json.dumps(payload))

    def test_rejects_negative_arrival(self, workload):
        payload = json.loads(dumps_trace(workload))
        payload["requests"][0]["arrival_s"] = -1
        with pytest.raises(ValueError, match="negative"):
            loads_trace(json.dumps(payload))

    def test_rejects_duplicate_ids(self, workload):
        payload = json.loads(dumps_trace(workload))
        payload["requests"][1]["id"] = payload["requests"][0]["id"]
        with pytest.raises(ValueError, match="duplicate"):
            loads_trace(json.dumps(payload))

    def test_rejects_unknown_benchmark(self, workload):
        payload = json.loads(dumps_trace(workload))
        payload["requests"][0]["family"] = "gpt4"
        with pytest.raises(KeyError):
            loads_trace(json.dumps(payload))
