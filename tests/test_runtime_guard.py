"""Degraded-mode guard: circuit breakers, retry budgets, shedding.

Acceptance criteria under test:
- ``failure_threshold`` strikes inside ``failure_window_s`` quarantine
  the board; allocation then avoids it even though it reports healthy;
- quarantine elapses into probation (board serves traffic again), one
  strike on probation re-quarantines, a clean probation closes the
  breaker;
- the breaker never starves the cluster below ``min_healthy_boards``;
- retry backoff is exponential with deterministic (seeded) jitter;
- shedding fires only under pressure (capacity loss or sustained SLO
  violation) and picks lowest-priority, youngest victims;
- every decision lands in the trace with a machine-readable reason.
"""

from __future__ import annotations

import pytest

from repro.obs.tracer import Tracer
from repro.runtime.controller import SystemController
from repro.runtime.guard import (
    BreakerState,
    DegradedModeGuard,
    GuardConfig,
)
from repro.sim.workload import Request


@pytest.fixture
def vital(cluster):
    return SystemController(cluster)


def _guarded(controller, **overrides):
    guard = DegradedModeGuard(GuardConfig(**overrides))
    controller.attach_guard(guard)
    return guard


class TestConfig:
    def test_defaults_validate(self):
        GuardConfig()

    @pytest.mark.parametrize("field, value", [
        ("failure_threshold", 0),
        ("failure_window_s", 0.0),
        ("quarantine_s", -1.0),
        ("probation_s", 0.0),
        ("max_reconfig_retries", -1),
        ("backoff_base_s", 0.0),
        ("backoff_jitter", 1.5),
        ("shed_queue_limit", -1),
        ("capacity_loss_threshold", 0.0),
        ("slo_sustained_s", -1.0),
        ("min_healthy_boards", 0),
    ])
    def test_bad_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            GuardConfig(**{field: value})


class TestBreaker:
    def test_threshold_strikes_quarantine(self, vital):
        guard = _guarded(vital, failure_threshold=2,
                         failure_window_s=60.0)
        guard.record_board_failure(1, now=10.0)
        assert guard.board_state(1) is BreakerState.CLOSED
        guard.record_board_failure(1, now=20.0)
        assert guard.board_state(1) is BreakerState.QUARANTINED
        assert guard.excluded_boards() == frozenset({1})

    def test_strikes_outside_window_do_not_trip(self, vital):
        guard = _guarded(vital, failure_threshold=2,
                         failure_window_s=30.0)
        guard.record_board_failure(1, now=10.0)
        guard.record_board_failure(1, now=100.0)
        assert guard.board_state(1) is BreakerState.CLOSED

    def test_quarantine_elapses_into_probation(self, vital):
        guard = _guarded(vital, failure_threshold=1,
                         quarantine_s=50.0, probation_s=40.0)
        guard.record_board_failure(2, now=10.0)
        assert guard.board_state(2) is BreakerState.QUARANTINED
        guard.advance(59.0)
        assert guard.board_state(2) is BreakerState.QUARANTINED
        guard.advance(61.0)
        assert guard.board_state(2) is BreakerState.PROBATION
        # probation boards serve traffic
        assert guard.excluded_boards() == frozenset()

    def test_clean_probation_closes_the_breaker(self, vital):
        guard = _guarded(vital, failure_threshold=1,
                         quarantine_s=50.0, probation_s=40.0)
        guard.record_board_failure(2, now=10.0)
        guard.advance(200.0)  # past quarantine + probation
        assert guard.board_state(2) is BreakerState.CLOSED
        assert not guard.degraded()

    def test_failure_on_probation_requarantines(self, vital):
        guard = _guarded(vital, failure_threshold=2,
                         quarantine_s=50.0, probation_s=40.0)
        guard.record_board_failure(2, now=0.0)
        guard.record_board_failure(2, now=1.0)
        guard.advance(60.0)
        assert guard.board_state(2) is BreakerState.PROBATION
        # a single strike suffices on probation, threshold or not
        guard.record_board_failure(2, now=65.0)
        assert guard.board_state(2) is BreakerState.QUARANTINED

    def test_reconfig_faults_count_toward_threshold(self, vital):
        guard = _guarded(vital, failure_threshold=3)
        guard.record_reconfig_faults(0, attempts=3, now=5.0)
        assert guard.board_state(0) is BreakerState.QUARANTINED

    def test_min_healthy_boards_floor(self, vital):
        guard = _guarded(vital, failure_threshold=1,
                         min_healthy_boards=2)
        guard.record_board_failure(0, now=1.0)
        guard.record_board_failure(1, now=2.0)
        # quarantining a third of four boards would leave one
        # admittable board -- below the floor of two
        guard.record_board_failure(2, now=3.0)
        assert guard.board_state(2) is BreakerState.CLOSED
        assert guard.excluded_boards() == frozenset({0, 1})

    def test_allocation_avoids_quarantined_board(self, vital,
                                                 compiled_small):
        guard = _guarded(vital, failure_threshold=1)
        vital.register(compiled_small)
        guard.record_board_failure(0, now=1.0)
        candidates = vital._allocatable_blocks(compiled_small)
        assert 0 not in candidates
        assert sorted(candidates) == [1, 2, 3]
        deployment = vital.try_deploy(compiled_small, 0, now=2.0)
        assert deployment is not None
        assert 0 not in deployment.placement.boards
        vital.release(deployment, now=3.0)

    def test_quarantine_events_have_reasons(self, vital):
        vital.tracer = Tracer()
        guard = _guarded(vital, failure_threshold=1,
                         quarantine_s=50.0)
        guard.record_board_failure(3, now=10.0)
        guard.advance(100.0)
        events = {e["name"]: e for e in vital.tracer.entries()}
        assert events["ctrl.quarantine"]["fields"]["reason"] \
            == "failure-threshold"
        assert events["ctrl.quarantine"]["fields"]["board"] == 3
        # the probation event carries the *scheduled* instant, not the
        # tick that happened to observe it
        assert events["ctrl.probation"]["t"] == 60.0
        assert events["ctrl.probation"]["fields"]["reason"] \
            == "quarantine-elapsed"


class TestRetryBudget:
    def test_backoff_is_exponential_with_bounded_jitter(self):
        guard = DegradedModeGuard(GuardConfig(
            backoff_base_s=0.01, backoff_jitter=0.25))
        for attempt in range(5):
            backoff = guard.retry_backoff(attempt)
            lo = 0.01 * 2 ** attempt
            assert lo <= backoff <= lo * 1.25

    def test_jitter_is_deterministic_per_seed(self):
        a = DegradedModeGuard(GuardConfig(seed=42))
        b = DegradedModeGuard(GuardConfig(seed=42))
        assert [a.retry_backoff(i) for i in range(4)] \
            == [b.retry_backoff(i) for i in range(4)]

    def test_zero_jitter_is_pure_exponential(self):
        guard = DegradedModeGuard(GuardConfig(
            backoff_base_s=0.5, backoff_jitter=0.0))
        assert [guard.retry_backoff(i) for i in range(3)] \
            == [0.5, 1.0, 2.0]


class TestShedding:
    def _queue(self, spec, n, priorities=None):
        priorities = priorities or [0] * n
        return [Request(request_id=i, spec=spec, arrival_s=float(i),
                        priority=priorities[i]) for i in range(n)]

    def test_no_shed_without_pressure(self, vital, compiled_small):
        guard = _guarded(vital, shed_queue_limit=2)
        queue = self._queue(compiled_small.spec, 5)
        assert guard.shed_victims(10.0, queue) == []

    def test_no_shed_below_queue_limit(self, vital, compiled_small):
        guard = _guarded(vital, shed_queue_limit=8,
                         capacity_loss_threshold=0.25)
        vital.fail_board(0, now=1.0)
        assert guard.shed_victims(10.0,
                                  self._queue(compiled_small.spec,
                                              5)) == []

    def test_capacity_loss_sheds_the_excess(self, vital,
                                            compiled_small):
        guard = _guarded(vital, shed_queue_limit=3,
                         capacity_loss_threshold=0.25,
                         failure_threshold=99)
        vital.fail_board(0, now=1.0)  # 1 of 4 boards = 25% lost
        queue = self._queue(compiled_small.spec, 5)
        victims = guard.shed_victims(10.0, queue)
        # excess of 2, youngest (highest id) first at equal priority
        assert [v.request_id for v in victims] == [4, 3]
        assert guard.shed_count == 2

    def test_low_priority_sheds_first(self, vital, compiled_small):
        guard = _guarded(vital, shed_queue_limit=2,
                         capacity_loss_threshold=0.25,
                         failure_threshold=99)
        vital.fail_board(0, now=1.0)
        queue = self._queue(compiled_small.spec, 4,
                            priorities=[0, -1, 5, -1])
        victims = guard.shed_victims(10.0, queue)
        assert [v.request_id for v in victims] == [3, 1]

    def test_shed_events_carry_reason(self, vital, compiled_small):
        vital.tracer = Tracer()
        guard = _guarded(vital, shed_queue_limit=0,
                         capacity_loss_threshold=0.25,
                         failure_threshold=99)
        vital.fail_board(0, now=1.0)
        guard.shed_victims(10.0, self._queue(compiled_small.spec, 1))
        sheds = [e for e in vital.tracer.entries()
                 if e["name"] == "ctrl.shed"]
        assert len(sheds) == 1
        assert sheds[0]["fields"]["reason"].startswith(
            "capacity-loss:")

    def test_counters_roll_up(self, vital):
        guard = _guarded(vital, failure_threshold=1,
                         quarantine_s=10.0)
        guard.record_board_failure(1, now=0.0)
        guard.advance(15.0)
        assert guard.counters() == {"quarantines": 1,
                                    "probations": 1, "shed": 0}


class TestSnapshot:
    """PR 7: breaker state survives a controller warm restart."""

    def _tripped(self, controller) -> DegradedModeGuard:
        guard = _guarded(controller, failure_threshold=2,
                         quarantine_s=40.0)
        guard.record_board_failure(0, now=10.0)
        guard.record_board_failure(0, now=11.0)  # trips the breaker
        guard.record_board_failure(1, now=12.0)  # one strike, armed
        return guard

    def _restored(self, vital, state) -> DegradedModeGuard:
        clone = DegradedModeGuard.restore(state)
        clone.bind(vital)  # as attach_guard would on the new controller
        return clone

    def test_roundtrip_preserves_breakers(self, vital):
        import json
        guard = self._tripped(vital)
        state = json.loads(json.dumps(guard.snapshot()))
        clone = self._restored(vital, state)
        assert clone.config == guard.config
        assert clone.excluded_boards() == guard.excluded_boards() \
            == frozenset({0})
        assert clone.counters() == guard.counters()

    def test_quarantine_clock_survives(self, vital):
        guard = self._tripped(vital)
        clone = self._restored(vital, guard.snapshot())
        # both expire into probation at the same simulated instant
        guard.advance(52.0)
        clone.advance(52.0)
        assert clone.excluded_boards() == guard.excluded_boards() \
            == frozenset()
        assert clone.board_state(0) == guard.board_state(0) \
            == BreakerState.PROBATION
        assert clone.counters() == guard.counters()

    def test_failure_window_survives(self, vital):
        guard = self._tripped(vital)
        clone = self._restored(vital, guard.snapshot())
        # board 1 already has one strike; the next one must trip the
        # restored guard exactly like the original
        guard.record_board_failure(1, now=13.0)
        clone.record_board_failure(1, now=13.0)
        assert clone.excluded_boards() == guard.excluded_boards()
        assert 1 in clone.excluded_boards()

    def test_load_snapshot_restores_in_place(self, vital):
        guard = self._tripped(vital)
        state = guard.snapshot()
        # load_snapshot replaces breaker state only -- the config (and
        # controller binding) belong to the surviving guard object
        other = DegradedModeGuard(guard.config)
        other.load_snapshot(state)
        assert other.snapshot() == state

    def test_rng_position_survives(self, vital):
        guard = self._tripped(vital)
        guard.retry_backoff(0)  # consume one jitter draw
        clone = self._restored(vital, guard.snapshot())
        assert guard.retry_backoff(1) == clone.retry_backoff(1)
