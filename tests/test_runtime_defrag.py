"""Tests for defragmentation through runtime relocation."""

import pytest

from repro.runtime.defrag import DefragmentingController
from repro.runtime.isolation import verify_isolation


@pytest.fixture()
def controller(cluster):
    return DefragmentingController(cluster)


def fragment(controller, small_app, large_app):
    """Occupy the cluster so every board has a few free blocks but none
    can host ``large_app`` whole; returns the live fillers."""
    live = []
    rid = 0
    while (d := controller.try_deploy(small_app, rid, 0.0)) is not None:
        live.append(d)
        rid += 1
    per_board = controller.cluster.blocks_per_board
    needed = large_app.num_blocks
    # free fillers round-robin so free space scatters across boards
    freed = {b.board_id: 0 for b in controller.cluster.boards}
    for d in sorted(live, key=lambda d: d.request_id):
        board = d.placement.boards[0]
        if freed[board] + d.num_blocks < needed \
                and sum(freed.values()) + d.num_blocks <= needed + 3:
            controller.release(d)
            live.remove(d)
            freed[board] += d.num_blocks
    return live


class TestDefrag:
    def test_consolidates_to_single_board(self, controller,
                                          compiled_medium,
                                          compiled_large):
        fragment(controller, compiled_medium, compiled_large)
        free = controller.resource_db.free_by_board()
        assert all(len(v) < compiled_large.num_blocks
                   for v in free.values())
        d = controller.try_deploy(compiled_large, 500, 0.0)
        if d is None:
            pytest.skip("fragmentation setup left too little space")
        assert not d.spans_boards
        assert controller.migrations_performed > 0
        verify_isolation(controller)

    def test_penalties_charged_to_moved_deployments(self, controller,
                                                    compiled_medium,
                                                    compiled_large):
        fragment(controller, compiled_medium, compiled_large)
        d = controller.try_deploy(compiled_large, 500, 0.0)
        if d is None or controller.migrations_performed == 0:
            pytest.skip("no migration occurred")
        assert d.corunner_penalties
        assert all(p > 0 for p in d.corunner_penalties.values())

    def test_no_migration_when_single_board_fits(self, controller,
                                                 compiled_large):
        d = controller.try_deploy(compiled_large, 0, 0.0)
        assert d is not None and not d.spans_boards
        assert controller.migrations_performed == 0
        assert d.corunner_penalties == {}

    def test_falls_back_to_spanning_when_plan_too_expensive(
            self, cluster, compiled_medium, compiled_large):
        controller = DefragmentingController(cluster,
                                             max_moved_blocks=0)
        fragment(controller, compiled_medium, compiled_large)
        d = controller.try_deploy(compiled_large, 500, 0.0)
        if d is None:
            pytest.skip("fragmentation setup left too little space")
        # nothing may move, so the base behavior (spanning) applies
        assert controller.migrations_performed == 0
        assert d.spans_boards

    def test_none_when_genuinely_full(self, controller,
                                      compiled_large):
        rid = 0
        while controller.try_deploy(compiled_large, rid, 0.0):
            rid += 1
        assert controller.try_deploy(compiled_large, 999, 0.0) is None

    def test_migrated_state_consistent(self, controller,
                                       compiled_medium,
                                       compiled_large):
        fillers = fragment(controller, compiled_medium, compiled_large)
        controller.try_deploy(compiled_large, 500, 0.0)
        # every live deployment's DB ownership matches its placement
        for d in controller.running():
            assert sorted(controller.resource_db.blocks_of(
                d.request_id)) == sorted(d.placement.addresses)
        verify_isolation(controller)
        # memory lives exactly where the placements are
        for d in controller.running():
            for board in d.placement.boards:
                assert d.tenant in controller.memories[board].tenants()


class TestControllerRegressions:
    """Pinned fixes for the defrag controller's accounting bugs."""

    def test_over_quota_probe_leaves_no_telemetry(self, cluster,
                                                  compiled_small):
        """The spanning probe must not run (or leak search telemetry)
        for a request the quota check is about to reject."""
        from repro.obs.tracer import Tracer
        controller = DefragmentingController(cluster)
        tracer = Tracer()
        controller.attach_tracer(tracer)
        controller.set_quota("locked", 0)
        d = controller.try_deploy(compiled_small, 1, 0.0,
                                  tenant="locked")
        assert d is None
        events = list(tracer.entries())
        assert [e["name"] for e in events] == ["ctrl.reject"]
        assert events[0]["fields"]["reason"] == "quota-exceeded"
        # the probe ran under save/restore, so no stale search stats
        assert controller.policy.last_search is None

    def test_fast_path_searches_exactly_once(self, cluster,
                                             compiled_small):
        """A non-spanning deploy must reuse the probe's placement, not
        re-run the allocator a second time."""
        controller = DefragmentingController(cluster)
        policy = controller.policy
        calls = {"n": 0}
        real_allocate = policy.allocate
        real_fast = policy.allocate_fast

        def spy_allocate(*a, **k):
            calls["n"] += 1
            return real_allocate(*a, **k)

        def spy_fast(*a, **k):
            calls["n"] += 1
            return real_fast(*a, **k)

        policy.allocate = spy_allocate
        policy.allocate_fast = spy_fast
        d = controller.try_deploy(compiled_small, 1, 0.0)
        assert d is not None and not d.spans_boards
        assert calls["n"] == 1

    def test_defrag_never_targets_unavailable_boards(
            self, cluster, compiled_medium, compiled_large):
        """plan/execute_migration must honor the shared availability
        filter: no migration may land on a failed or quarantined
        board."""
        from repro.runtime.guard import DegradedModeGuard, GuardConfig
        controller = DefragmentingController(cluster)
        boards = [b.board_id for b in cluster.boards]
        controller.fail_board(boards[-1], now=0.0)
        guard = DegradedModeGuard(GuardConfig(failure_threshold=1))
        controller.attach_guard(guard)
        guard.record_board_failure(boards[-2], now=0.0)
        assert boards[-2] in guard.excluded_boards()
        allowed = set(boards[:-2])
        fragment(controller, compiled_medium, compiled_large)
        controller.try_deploy(compiled_large, 500, 0.0)
        for d in controller.running():
            assert set(d.placement.boards) <= allowed, \
                f"request {d.request_id} placed on unavailable board"
        verify_isolation(controller)


class TestDefragmenter:
    """The background pass driven by the fragmentation gauge."""

    def test_rejection_trigger_bypasses_min_interval(
            self, cluster, compiled_medium, compiled_large):
        from repro.runtime.controller import SystemController
        from repro.runtime.defrag import DefragConfig, Defragmenter
        controller = SystemController(cluster)
        fragment(controller, compiled_medium, compiled_large)
        free = controller.resource_db.free_by_board()
        needed = compiled_large.num_blocks
        if sum(len(v) for v in free.values()) < needed \
                or any(len(v) >= needed for v in free.values()):
            pytest.skip("fragmentation setup did not scatter space")
        defrag = Defragmenter(controller, DefragConfig(
            frag_threshold=2.0,  # threshold trigger can never fire
            min_interval_s=1e9,  # nor a rate-limited pass
            budget_burst_blocks=16, max_moved_blocks=16))
        penalties = defrag.maybe_pass(0.0, needed_blocks=needed)
        assert penalties
        assert defrag.passes == 1
        assert controller.migrations_performed == defrag.moves > 0
        # consolidation opened a single-board home for the request
        free = controller.resource_db.free_by_board()
        assert any(len(v) >= needed for v in free.values())
        verify_isolation(controller)

    def test_budget_gates_every_pass(self, cluster, compiled_medium,
                                     compiled_large):
        from repro.runtime.controller import SystemController
        from repro.runtime.defrag import DefragConfig, Defragmenter
        controller = SystemController(cluster)
        fragment(controller, compiled_medium, compiled_large)
        defrag = Defragmenter(controller, DefragConfig(
            budget_burst_blocks=0, budget_blocks_per_s=0.5,
            frag_threshold=0.0, min_interval_s=0.0))
        assert defrag.maybe_pass(
            0.0, needed_blocks=compiled_large.num_blocks) == {}
        assert defrag.passes == 0
        assert controller.migrations_performed == 0
        # tokens refill with sim time, so later the pass can run
        penalties = defrag.maybe_pass(
            60.0, needed_blocks=compiled_large.num_blocks)
        if penalties:
            assert controller.migrations_performed > 0

    def test_pass_emits_trace_event(self, cluster, compiled_medium,
                                    compiled_large):
        from repro.obs.tracer import Tracer
        from repro.runtime.controller import SystemController
        from repro.runtime.defrag import DefragConfig, Defragmenter
        controller = SystemController(cluster)
        tracer = Tracer()
        controller.attach_tracer(tracer)
        fragment(controller, compiled_medium, compiled_large)
        defrag = Defragmenter(controller, DefragConfig(
            budget_burst_blocks=16, max_moved_blocks=16))
        penalties = defrag.maybe_pass(
            1.0, needed_blocks=compiled_large.num_blocks)
        if not penalties:
            pytest.skip("no pass executed on this layout")
        events = [e for e in tracer.entries()
                  if e["name"] == "defrag.pass"]
        assert len(events) == 1
        fields = events[0]["fields"]
        assert fields["trigger"] == "rejection"
        assert fields["moves"] == defrag.moves
        assert fields["moved_blocks"] == defrag.moved_blocks
        assert fields["pause_s"] == pytest.approx(
            sum(penalties.values()))
