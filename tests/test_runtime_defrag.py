"""Tests for defragmentation through runtime relocation."""

import pytest

from repro.runtime.defrag import DefragmentingController
from repro.runtime.isolation import verify_isolation


@pytest.fixture()
def controller(cluster):
    return DefragmentingController(cluster)


def fragment(controller, small_app, large_app):
    """Occupy the cluster so every board has a few free blocks but none
    can host ``large_app`` whole; returns the live fillers."""
    live = []
    rid = 0
    while (d := controller.try_deploy(small_app, rid, 0.0)) is not None:
        live.append(d)
        rid += 1
    per_board = controller.cluster.blocks_per_board
    needed = large_app.num_blocks
    # free fillers round-robin so free space scatters across boards
    freed = {b.board_id: 0 for b in controller.cluster.boards}
    for d in sorted(live, key=lambda d: d.request_id):
        board = d.placement.boards[0]
        if freed[board] + d.num_blocks < needed \
                and sum(freed.values()) + d.num_blocks <= needed + 3:
            controller.release(d)
            live.remove(d)
            freed[board] += d.num_blocks
    return live


class TestDefrag:
    def test_consolidates_to_single_board(self, controller,
                                          compiled_medium,
                                          compiled_large):
        fragment(controller, compiled_medium, compiled_large)
        free = controller.resource_db.free_by_board()
        assert all(len(v) < compiled_large.num_blocks
                   for v in free.values())
        d = controller.try_deploy(compiled_large, 500, 0.0)
        if d is None:
            pytest.skip("fragmentation setup left too little space")
        assert not d.spans_boards
        assert controller.migrations_performed > 0
        verify_isolation(controller)

    def test_penalties_charged_to_moved_deployments(self, controller,
                                                    compiled_medium,
                                                    compiled_large):
        fragment(controller, compiled_medium, compiled_large)
        d = controller.try_deploy(compiled_large, 500, 0.0)
        if d is None or controller.migrations_performed == 0:
            pytest.skip("no migration occurred")
        assert d.corunner_penalties
        assert all(p > 0 for p in d.corunner_penalties.values())

    def test_no_migration_when_single_board_fits(self, controller,
                                                 compiled_large):
        d = controller.try_deploy(compiled_large, 0, 0.0)
        assert d is not None and not d.spans_boards
        assert controller.migrations_performed == 0
        assert d.corunner_penalties == {}

    def test_falls_back_to_spanning_when_plan_too_expensive(
            self, cluster, compiled_medium, compiled_large):
        controller = DefragmentingController(cluster,
                                             max_moved_blocks=0)
        fragment(controller, compiled_medium, compiled_large)
        d = controller.try_deploy(compiled_large, 500, 0.0)
        if d is None:
            pytest.skip("fragmentation setup left too little space")
        # nothing may move, so the base behavior (spanning) applies
        assert controller.migrations_performed == 0
        assert d.spans_boards

    def test_none_when_genuinely_full(self, controller,
                                      compiled_large):
        rid = 0
        while controller.try_deploy(compiled_large, rid, 0.0):
            rid += 1
        assert controller.try_deploy(compiled_large, 999, 0.0) is None

    def test_migrated_state_consistent(self, controller,
                                       compiled_medium,
                                       compiled_large):
        fillers = fragment(controller, compiled_medium, compiled_large)
        controller.try_deploy(compiled_large, 500, 0.0)
        # every live deployment's DB ownership matches its placement
        for d in controller.running():
            assert sorted(controller.resource_db.blocks_of(
                d.request_id)) == sorted(d.placement.addresses)
        verify_isolation(controller)
        # memory lives exactly where the placements are
        for d in controller.running():
            for board in d.placement.boards:
                assert d.tenant in controller.memories[board].tenants()
