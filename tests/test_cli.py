"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.set_index == 7
        assert args.managers == "per-device,vital"

    def test_partition_flags(self):
        args = build_parser().parse_args(
            ["partition", "--device", "VU13P", "--no-buffer-opt"])
        assert args.device == "VU13P" and args.no_buffer_opt


class TestCommands:
    def test_status(self, capsys):
        assert main(["status", "--boards", "2"]) == 0
        out = capsys.readouterr().out
        assert "2xXCVU37P" in out
        assert "identical physical blocks" in out

    def test_partition(self, capsys):
        assert main(["partition"]) == 0
        out = capsys.readouterr().out
        assert "candidate partitions of XCVU37P" in out
        assert "system reserved" in out

    def test_partition_hardened(self, capsys):
        assert main(["partition", "--hardened"]) == 0
        assert "reserved" in capsys.readouterr().out

    def test_compile(self, capsys):
        assert main(["compile", "mlp-mnist", "S"]) == 0
        out = capsys.readouterr().out
        assert "mlp-mnist-S" in out
        assert "local_pnr_s" in out

    def test_links(self, capsys):
        assert main(["links"]) == 0
        out = capsys.readouterr().out
        assert "inter-fpga" in out and "Gb/s" in out

    def test_simulate_small(self, capsys):
        code = main(["simulate", "--set", "1", "--requests", "10",
                     "--managers", "vital", "--boards", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "workload set #1" in out
        assert "vital" in out

    def test_simulate_unknown_manager(self, capsys):
        assert main(["simulate", "--managers", "bogus"]) == 2
        assert "unknown managers" in capsys.readouterr().out

    def test_trace_roundtrip(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        assert main(["trace", str(path), "--set", "4",
                     "--requests", "15"]) == 0
        from repro.sim.trace import load_trace
        assert len(load_trace(path)) == 15

    def test_report_from_results(self, capsys, tmp_path):
        (tmp_path / "fig9.txt").write_text("the figure nine body\n")
        out_path = tmp_path / "OUT.md"
        assert main(["report", "--results", str(tmp_path),
                     "--output", str(out_path)]) == 0
        assert "figure nine body" in out_path.read_text()

    def test_report_missing_dir(self, capsys, tmp_path):
        assert main(["report", "--results",
                     str(tmp_path / "nope")]) == 2
        assert "no results directory" in capsys.readouterr().out

    def test_export_db(self, capsys, tmp_path):
        path = tmp_path / "db.json"
        assert main(["export-db", str(path)]) == 0
        from repro.cluster.cluster import make_cluster
        from repro.runtime.persistence import load_bitstream_db
        cluster = make_cluster(num_boards=1)
        db = load_bitstream_db(path, cluster.footprint)
        assert len(db) == 21


class TestObservability:
    def test_simulate_trace_is_byte_identical(self, capsys, tmp_path):
        """Golden determinism: two seeded 4-board runs, same bytes."""
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            assert main(["simulate", "--set", "1", "--requests", "12",
                         "--boards", "4", "--seed", "3",
                         "--managers", "vital",
                         "--trace", str(path)]) == 0
        capsys.readouterr()
        first, second = (p.read_bytes() for p in paths)
        assert first == second
        assert first  # non-empty trace

    def test_simulate_trace_has_decisions(self, capsys, tmp_path):
        import json
        path = tmp_path / "t.jsonl"
        assert main(["simulate", "--set", "1", "--requests", "10",
                     "--boards", "2", "--managers", "vital",
                     "--trace", str(path)]) == 0
        assert "trace entries" in capsys.readouterr().out
        names = {json.loads(line)["name"]
                 for line in path.read_text().splitlines()}
        assert {"sim.begin", "sim.arrival", "sim.deploy",
                "sim.complete", "ctrl.deploy"} <= names

    def test_simulate_metrics_json(self, capsys, tmp_path):
        import json
        path = tmp_path / "metrics.json"
        assert main(["simulate", "--set", "1", "--requests", "10",
                     "--boards", "2", "--managers", "vital",
                     "--metrics", str(path)]) == 0
        metrics = json.loads(path.read_text())
        assert "deploys_total" in metrics
        assert metrics["completions_total"][0]["value"] == 10

    def test_simulate_metrics_prometheus(self, capsys, tmp_path):
        path = tmp_path / "metrics.prom"
        assert main(["simulate", "--set", "1", "--requests", "10",
                     "--boards", "2", "--managers", "vital",
                     "--metrics", str(path)]) == 0
        text = path.read_text()
        assert "# TYPE deploys_total counter" in text
        assert 'deploys_total{manager="vital"} 10' in text

    def test_simulate_replays_workload_trace(self, capsys, tmp_path):
        trace = tmp_path / "workload.json"
        main(["trace", str(trace), "--set", "1", "--requests", "8"])
        capsys.readouterr()
        assert main(["simulate", "--from-trace", str(trace),
                     "--boards", "2", "--managers", "vital"]) == 0
        out = capsys.readouterr().out
        assert "8 requests" in out

    def test_simulate_malformed_workload_trace(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["simulate", "--from-trace", str(bad),
                     "--managers", "vital"]) == 2
        assert "cannot replay" in capsys.readouterr().out

    def test_report_trace_summary(self, capsys, tmp_path):
        path = tmp_path / "t.jsonl"
        main(["simulate", "--set", "1", "--requests", "10",
              "--boards", "2", "--managers", "vital",
              "--trace", str(path)])
        capsys.readouterr()
        assert main(["report", "--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "decisions" in out
        assert "wait p50 / p95" in out

    def test_report_malformed_trace(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("definitely not json\n")
        assert main(["report", "--trace", str(bad)]) == 2
        assert "cannot summarize" in capsys.readouterr().out

    def test_report_missing_trace_file(self, capsys, tmp_path):
        assert main(["report", "--trace",
                     str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot summarize" in capsys.readouterr().out


class TestFaultDrills:
    def test_status_shows_board_health(self, capsys):
        assert main(["status", "--boards", "2"]) == 0
        out = capsys.readouterr().out
        assert "board health" in out
        assert out.count("healthy") == 2

    def test_fail_board_drill(self, capsys, tmp_path):
        state = tmp_path / "drill.json"
        assert main(["fail-board", "0", "--boards", "2",
                     "--state", str(state)]) == 0
        out = capsys.readouterr().out
        assert "deployment(s) evicted" in out
        assert "recovered on boards" in out
        assert "FAILED" in out
        assert "audit tail" in out

    def test_fail_board_requeue_policy(self, capsys):
        assert main(["fail-board", "0", "--boards", "2",
                     "--recovery", "fail-requeue"]) == 0
        assert "re-queued" in capsys.readouterr().out

    def test_status_reads_drill_state(self, capsys, tmp_path):
        state = tmp_path / "drill.json"
        main(["fail-board", "0", "--boards", "2",
              "--state", str(state)])
        capsys.readouterr()
        assert main(["status", "--boards", "2",
                     "--state", str(state)]) == 0
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert "interrupted deployments" in out

    def test_fail_already_failed_board(self, capsys, tmp_path):
        state = tmp_path / "drill.json"
        main(["fail-board", "0", "--boards", "2",
              "--state", str(state)])
        capsys.readouterr()
        assert main(["fail-board", "0", "--boards", "2",
                     "--state", str(state)]) == 2
        assert "already failed" in capsys.readouterr().out

    def test_repair_board_drill(self, capsys, tmp_path):
        state = tmp_path / "drill.json"
        main(["fail-board", "0", "--boards", "2",
              "--state", str(state)])
        capsys.readouterr()
        assert main(["repair-board", "0", "--boards", "2",
                     "--state", str(state)]) == 0
        out = capsys.readouterr().out
        assert "repaired" in out
        assert "FAILED" not in out

    def test_repair_healthy_board(self, capsys):
        assert main(["repair-board", "1", "--boards", "2"]) == 0
        assert "not failed" in capsys.readouterr().out


class TestHealthEngine:
    HEALTH_RUN = ["simulate", "--set", "1", "--requests", "20",
                  "--boards", "4", "--seed", "3", "--managers", "vital",
                  "--faults", "demo", "--recovery",
                  "migrate-on-failure"]

    def test_simulate_health_prints_slo_verdict(self, capsys):
        assert main(self.HEALTH_RUN + ["--health"]) == 0
        out = capsys.readouterr().out
        assert "failed_boards < 1" in out
        assert "all SLO violations recovered within the run" in out

    def test_simulate_timeline_is_byte_identical(self, capsys,
                                                 tmp_path):
        import json
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            assert main(self.HEALTH_RUN
                        + ["--timeline", str(path)]) == 0
        capsys.readouterr()
        first, second = (p.read_bytes() for p in paths)
        assert first == second
        doc = json.loads(first)
        assert doc["interval_s"] == 10.0
        downs = [b["failed_boards"] for b in doc["buckets"]]
        assert 1 in downs and downs[-1] == 0  # outage seen, healed

    def test_simulate_timeline_csv(self, capsys, tmp_path):
        path = tmp_path / "tl.csv"
        assert main(self.HEALTH_RUN + ["--timeline", str(path)]) == 0
        assert path.read_text().startswith("t,utilization,")

    def test_simulate_custom_slo_rule(self, capsys):
        assert main(self.HEALTH_RUN
                    + ["--slo", "utilization > 0.99"]) == 0
        assert "still violated at end of run" in capsys.readouterr().out

    def test_simulate_bad_slo_rule(self, capsys):
        assert main(["simulate", "--slo", "bogus metric"]) == 2
        assert "cannot parse" in capsys.readouterr().out

    def test_faults_demo_needs_two_boards(self, capsys):
        assert main(["simulate", "--boards", "1", "--managers",
                     "vital", "--faults", "demo"]) == 2
        assert "at least 2 boards" in capsys.readouterr().out

    def test_report_timeline_table(self, capsys, tmp_path):
        path = tmp_path / "tl.json"
        main(self.HEALTH_RUN + ["--timeline", str(path)])
        capsys.readouterr()
        assert main(["report", "--timeline", str(path)]) == 0
        out = capsys.readouterr().out
        assert "util" in out and "frag" in out

    def test_report_trace_json_profile(self, capsys, tmp_path):
        import json
        path = tmp_path / "t.jsonl"
        main(self.HEALTH_RUN + ["--health", "--trace", str(path)])
        capsys.readouterr()
        assert main(["report", "--trace", str(path),
                     "--format", "json"]) == 0
        profile = json.loads(capsys.readouterr().out)
        assert profile["decisions"]["deploys"] > 0
        assert profile["slo"]["violations"]


class TestDiff:
    def _trace(self, tmp_path, name, *extra):
        path = tmp_path / name
        args = ["simulate", "--set", "1", "--requests", "15",
                "--boards", "4", "--seed", "3", "--trace", str(path),
                *extra]
        assert main(args) == 0
        return path

    def test_identical_traces_exit_zero(self, capsys, tmp_path):
        a = self._trace(tmp_path, "a.jsonl", "--managers", "vital")
        b = self._trace(tmp_path, "b.jsonl", "--managers", "vital")
        capsys.readouterr()
        assert main(["diff", str(a), str(b),
                     "--fail-on-regression"]) == 0
        assert "semantically identical" in capsys.readouterr().out

    def test_policy_change_produces_deltas(self, capsys, tmp_path):
        a = self._trace(tmp_path, "a.jsonl", "--managers", "vital")
        b = self._trace(tmp_path, "b.jsonl", "--managers",
                        "per-device")
        capsys.readouterr()
        assert main(["diff", str(a), str(b)]) == 0  # no gate flag
        assert "semantic deltas" in capsys.readouterr().out

    def test_fail_on_regression_gates(self, capsys, tmp_path):
        import json
        a = self._trace(tmp_path, "a.jsonl", "--managers", "vital")
        events = [json.loads(line)
                  for line in a.read_text().splitlines()]
        events = [e for e in events if e["name"] != "ctrl.deploy"]
        b = tmp_path / "b.jsonl"
        b.write_text("\n".join(
            json.dumps(e, sort_keys=True, separators=(",", ":"))
            for e in events) + "\n")
        capsys.readouterr()
        assert main(["diff", str(a), str(b),
                     "--fail-on-regression"]) == 1
        assert "regression" in capsys.readouterr().out

    def test_diff_json_format(self, capsys, tmp_path):
        import json
        a = self._trace(tmp_path, "a.jsonl", "--managers", "vital")
        capsys.readouterr()
        assert main(["diff", str(a), str(a), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["identical"] is True
        assert doc["regressions"] == []

    def test_metrics_vs_trace_mismatch(self, capsys, tmp_path):
        a = self._trace(tmp_path, "a.jsonl", "--managers", "vital")
        metrics = tmp_path / "m.json"
        assert main(["simulate", "--set", "1", "--requests", "10",
                     "--boards", "2", "--managers", "vital",
                     "--metrics", str(metrics)]) == 0
        capsys.readouterr()
        assert main(["diff", str(metrics), str(a)]) == 2
        assert "cannot diff" in capsys.readouterr().out

    def test_missing_operand(self, capsys, tmp_path):
        assert main(["diff", str(tmp_path / "nope.jsonl"),
                     str(tmp_path / "nada.jsonl")]) == 2


class TestBoardIdValidation:
    """Unknown board ids exit non-zero with a clear message -- never a
    traceback."""

    def test_fail_board_unknown_id(self, capsys):
        assert main(["fail-board", "9"]) == 2
        out = capsys.readouterr().out
        assert "unknown board id 9" in out
        assert "0..3" in out

    def test_fail_board_negative_id(self, capsys):
        assert main(["fail-board", "--", "-1"]) == 2
        assert "unknown board id -1" in capsys.readouterr().out

    def test_repair_board_unknown_id(self, capsys):
        assert main(["repair-board", "7", "--boards", "4"]) == 2
        out = capsys.readouterr().out
        assert "unknown board id 7" in out

    def test_validation_respects_boards_flag(self, capsys):
        # board 5 exists in an 8-board cluster
        assert main(["repair-board", "5", "--boards", "8"]) == 0
        assert "board 5" in capsys.readouterr().out


class TestChaosCommand:
    def test_list_prints_the_matrix(self, capsys):
        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        assert "rack-flap" in out and "zone-cascade" in out

    def test_unknown_scenario_exits_nonzero(self, capsys):
        assert main(["chaos", "--scenario", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().out

    def test_trace_requires_scenario(self, capsys, tmp_path):
        assert main(["chaos", "--trace",
                     str(tmp_path / "t.jsonl")]) == 2
        assert "--scenario" in capsys.readouterr().out

    def test_scenario_run_writes_trace(self, capsys, tmp_path):
        trace = tmp_path / "chaos.jsonl"
        code = main(["chaos", "--scenario", "rack-flap",
                     "--trace", str(trace)])
        assert code == 0
        out = capsys.readouterr().out
        assert "all invariants held" in out
        assert trace.exists()
        lines = trace.read_text().splitlines()
        assert any('"ctrl.quarantine"' in line for line in lines)

    def test_scenario_json_output(self, capsys):
        import json as _json
        code = main(["chaos", "--scenario", "rack-flap",
                     "--format", "json"])
        assert code == 0
        doc = _json.loads(capsys.readouterr().out)
        assert doc["guarded"] is True
        assert doc["scenarios"][0]["scenario"] == "rack-flap"
        assert doc["scenarios"][0]["quarantines"] > 0


class TestProfileFlags:
    def test_simulate_profile_breakdown(self, capsys):
        code = main(["simulate", "--set", "1", "--requests", "8",
                     "--managers", "vital", "--boards", "2",
                     "--profile"])
        assert code == 0
        out = capsys.readouterr().out
        assert "phase profile" in out
        assert "compile" in out and "simulate" in out
        assert "op counters" in out and "deploys" in out
        assert "measured wall" in out

    def test_simulate_profile_out_is_diff_consumable(self, capsys,
                                                     tmp_path):
        from repro.analysis.diff import load_diff_input
        out_path = tmp_path / "profile.json"
        code = main(["simulate", "--set", "1", "--requests", "8",
                     "--managers", "vital", "--boards", "2",
                     "--profile-out", str(out_path)])
        assert code == 0
        kind, doc = load_diff_input(out_path)
        assert kind == "profile"
        assert "simulate" in doc["spans"]
        assert doc["decisions"]["events_popped"] > 0

    def test_chaos_profile_breakdown(self, capsys):
        code = main(["chaos", "--scenario", "rack-flap", "--profile"])
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario.rack-flap" in out
        assert "compile" in out


class TestCampaignCommand:
    def test_smoke_grid_table(self, capsys):
        code = main(["campaign", "--grid", "smoke",
                     "--requests", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "campaign grid 'smoke'" in out
        assert "smoke/poisson" in out
        assert "grid fingerprint" in out
        assert "misses" in out

    def test_json_format_and_warm_cache(self, capsys, tmp_path):
        import json as _json
        cache_dir = str(tmp_path / "cache")
        argv = ["campaign", "--grid", "smoke", "--requests", "4",
                "--cache-dir", cache_dir, "--format", "json"]
        assert main(argv) == 0
        cold = _json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        warm = _json.loads(capsys.readouterr().out)
        assert cold["cache"]["misses"] == len(cold["results"])
        assert warm["cache"]["hits"] == len(warm["results"])
        assert warm["fingerprint"] == cold["fingerprint"]
        # byte-level determinism across cold and warm runs
        assert _json.dumps(warm["results"], sort_keys=True) \
            == _json.dumps(cold["results"], sort_keys=True)

    def test_bench_out_appends_trajectory(self, capsys, tmp_path):
        from repro.analysis.bench import load_bench
        bench_path = tmp_path / "BENCH_perf.json"
        code = main(["campaign", "--grid", "smoke",
                     "--requests", "4",
                     "--bench-out", str(bench_path),
                     "--anchor", "ci-smoke"])
        assert code == 0
        doc = load_bench(bench_path)
        entry = doc["entries"][-1]
        assert entry["anchor"] == "ci-smoke"
        assert entry["fingerprint"]
        assert entry["metrics"]["configs"] == 4

    def test_campaign_profile(self, capsys):
        code = main(["campaign", "--grid", "smoke",
                     "--requests", "4", "--profile"])
        assert code == 0
        out = capsys.readouterr().out
        assert "campaign.compile" in out
        assert "phase profile" in out


class TestBenchCommand:
    def test_validate_repo_trajectories(self, capsys):
        code = main(["bench", "validate", "BENCH_perf.json",
                     "BENCH_robustness.json"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("ok ") == 2

    def test_validate_rejects_broken_file(self, capsys, tmp_path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text('{"bench": "bad", "schema": 1, '
                       '"entries": [{}]}')
        assert main(["bench", "validate", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_append_then_gate(self, capsys, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        assert main(["bench", "append", str(path),
                     "--anchor", "x", "--date", "2026-08-08",
                     "--metric", "wall_s=1.0",
                     "--metric", "rack_flap.goodput=0.99"]) == 0
        assert main(["bench", "gate", str(path)]) == 0
        out = capsys.readouterr().out
        assert "appended 'x'" in out
        assert "within x4 band" in out

    def test_gate_fails_out_of_band(self, capsys, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        main(["bench", "append", str(path), "--anchor", "x",
              "--date", "2026-08-08", "--metric", "wall_s=1.0"])
        main(["bench", "append", str(path), "--anchor", "x",
              "--date", "2026-08-09", "--metric", "wall_s=9.0"])
        capsys.readouterr()
        assert main(["bench", "gate", str(path)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_append_rejects_bad_metric(self, capsys, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        assert main(["bench", "append", str(path), "--anchor", "x",
                     "--metric", "wall_s"]) == 2
        assert main(["bench", "append", str(path), "--anchor", "x",
                     "--metric", "wall_s=fast"]) == 2
