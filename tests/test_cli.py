"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.set_index == 7
        assert args.managers == "per-device,vital"

    def test_partition_flags(self):
        args = build_parser().parse_args(
            ["partition", "--device", "VU13P", "--no-buffer-opt"])
        assert args.device == "VU13P" and args.no_buffer_opt


class TestCommands:
    def test_status(self, capsys):
        assert main(["status", "--boards", "2"]) == 0
        out = capsys.readouterr().out
        assert "2xXCVU37P" in out
        assert "identical physical blocks" in out

    def test_partition(self, capsys):
        assert main(["partition"]) == 0
        out = capsys.readouterr().out
        assert "candidate partitions of XCVU37P" in out
        assert "system reserved" in out

    def test_partition_hardened(self, capsys):
        assert main(["partition", "--hardened"]) == 0
        assert "reserved" in capsys.readouterr().out

    def test_compile(self, capsys):
        assert main(["compile", "mlp-mnist", "S"]) == 0
        out = capsys.readouterr().out
        assert "mlp-mnist-S" in out
        assert "local_pnr_s" in out

    def test_links(self, capsys):
        assert main(["links"]) == 0
        out = capsys.readouterr().out
        assert "inter-fpga" in out and "Gb/s" in out

    def test_simulate_small(self, capsys):
        code = main(["simulate", "--set", "1", "--requests", "10",
                     "--managers", "vital", "--boards", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "workload set #1" in out
        assert "vital" in out

    def test_simulate_unknown_manager(self, capsys):
        assert main(["simulate", "--managers", "bogus"]) == 2
        assert "unknown managers" in capsys.readouterr().out

    def test_trace_roundtrip(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        assert main(["trace", str(path), "--set", "4",
                     "--requests", "15"]) == 0
        from repro.sim.trace import load_trace
        assert len(load_trace(path)) == 15

    def test_report_from_results(self, capsys, tmp_path):
        (tmp_path / "fig9.txt").write_text("the figure nine body\n")
        out_path = tmp_path / "OUT.md"
        assert main(["report", "--results", str(tmp_path),
                     "--output", str(out_path)]) == 0
        assert "figure nine body" in out_path.read_text()

    def test_report_missing_dir(self, capsys, tmp_path):
        assert main(["report", "--results",
                     str(tmp_path / "nope")]) == 2
        assert "no results directory" in capsys.readouterr().out

    def test_export_db(self, capsys, tmp_path):
        path = tmp_path / "db.json"
        assert main(["export-db", str(path)]) == 0
        from repro.cluster.cluster import make_cluster
        from repro.runtime.persistence import load_bitstream_db
        cluster = make_cluster(num_boards=1)
        db = load_bitstream_db(path, cluster.footprint)
        assert len(db) == 21


class TestFaultDrills:
    def test_status_shows_board_health(self, capsys):
        assert main(["status", "--boards", "2"]) == 0
        out = capsys.readouterr().out
        assert "board health" in out
        assert out.count("healthy") == 2

    def test_fail_board_drill(self, capsys, tmp_path):
        state = tmp_path / "drill.json"
        assert main(["fail-board", "0", "--boards", "2",
                     "--state", str(state)]) == 0
        out = capsys.readouterr().out
        assert "deployment(s) evicted" in out
        assert "recovered on boards" in out
        assert "FAILED" in out
        assert "audit tail" in out

    def test_fail_board_requeue_policy(self, capsys):
        assert main(["fail-board", "0", "--boards", "2",
                     "--recovery", "fail-requeue"]) == 0
        assert "re-queued" in capsys.readouterr().out

    def test_status_reads_drill_state(self, capsys, tmp_path):
        state = tmp_path / "drill.json"
        main(["fail-board", "0", "--boards", "2",
              "--state", str(state)])
        capsys.readouterr()
        assert main(["status", "--boards", "2",
                     "--state", str(state)]) == 0
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert "interrupted deployments" in out

    def test_fail_already_failed_board(self, capsys, tmp_path):
        state = tmp_path / "drill.json"
        main(["fail-board", "0", "--boards", "2",
              "--state", str(state)])
        capsys.readouterr()
        assert main(["fail-board", "0", "--boards", "2",
                     "--state", str(state)]) == 2
        assert "already failed" in capsys.readouterr().out

    def test_repair_board_drill(self, capsys, tmp_path):
        state = tmp_path / "drill.json"
        main(["fail-board", "0", "--boards", "2",
              "--state", str(state)])
        capsys.readouterr()
        assert main(["repair-board", "0", "--boards", "2",
                     "--state", str(state)]) == 0
        out = capsys.readouterr().out
        assert "repaired" in out
        assert "FAILED" not in out

    def test_repair_healthy_board(self, capsys):
        assert main(["repair-board", "1", "--boards", "2"]) == 0
        assert "not failed" in capsys.readouterr().out
