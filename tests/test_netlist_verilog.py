"""Tests for the structural Verilog export."""

import re

import pytest

from repro.fabric.resources import ResourceVector
from repro.hls.frontend import synthesize
from repro.hls.kernels import benchmark
from repro.netlist.netlist import Netlist, PortDirection
from repro.netlist.primitives import PrimitiveType
from repro.netlist.verilog import to_verilog


@pytest.fixture()
def tiny():
    nl = Netlist("tiny")
    a = nl.add_primitive(PrimitiveType.LUT, name="a")
    b = nl.add_primitive(PrimitiveType.FF, name="b")
    inp = nl.add_port("din", PortDirection.INPUT, 8)
    outp = nl.add_port("dout", PortDirection.OUTPUT, 8)
    nl.add_net(inp.primitive_uid, [a], width_bits=8)
    nl.add_net(a, [b], width_bits=1)
    nl.add_net(b, [outp.primitive_uid], width_bits=8)
    return nl


class TestToVerilog:
    def test_module_header_and_footer(self, tiny):
        text = to_verilog(tiny)
        assert text.splitlines()[1].startswith("module tiny (")
        assert text.rstrip().endswith("endmodule")

    def test_ports_declared_with_width(self, tiny):
        text = to_verilog(tiny)
        assert "input [7:0] din;" in text
        assert "output [7:0] dout;" in text

    def test_one_wire_per_net(self, tiny):
        text = to_verilog(tiny)
        assert len(re.findall(r"^\s*wire ", text, re.M)) \
            == tiny.num_nets

    def test_cells_instantiated(self, tiny):
        text = to_verilog(tiny)
        assert "LUT6" in text and "FDRE" in text

    def test_pad_assigns_present(self, tiny):
        text = to_verilog(tiny)
        assert re.search(r"assign net_\d+ = din;", text)
        assert re.search(r"assign dout = net_\d+;", text)

    def test_macro_parameters_carry_resources(self):
        nl = Netlist("m")
        uid = nl.add_primitive(
            PrimitiveType.MACRO,
            resources=ResourceVector(lut=100, dff=200, dsp=4,
                                     bram_mb=0.072))
        sink = nl.add_primitive(PrimitiveType.FF)
        nl.add_net(uid, [sink])
        text = to_verilog(nl)
        assert ".LUTS(100)" in text
        assert ".BRAM_KB(74)" in text

    def test_full_benchmark_exports(self):
        nl = synthesize(benchmark("mlp-mnist", "S"))
        text = to_verilog(nl)
        assert text.count("vital_macro") \
            == sum(1 for p in nl.primitives.values()
                   if p.kind is PrimitiveType.MACRO)
        # every net wire referenced at least twice (decl + use)
        assert "endmodule" in text

    def test_escaped_identifiers(self):
        nl = Netlist("has spaces")
        a = nl.add_primitive(PrimitiveType.LUT, name="x")
        b = nl.add_primitive(PrimitiveType.FF)
        nl.add_net(a, [b])
        text = to_verilog(nl)
        assert "\\has spaces " in text
