"""Tests for the report formatting helpers."""

import pytest

from repro.analysis.report import format_bar_series, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "v"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        # the value column starts at the same offset on every line
        header, _, row_a, row_b = lines
        offset = header.index("v")
        assert row_a.index("1") == offset
        assert row_b.index("22") == offset
        assert "long-name" in lines[-1]

    def test_title(self):
        text = format_table(["x"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_float_formatting(self):
        assert "0.123" in format_table(["x"], [[0.12345]])

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestFormatBarSeries:
    def test_bars_scale(self):
        text = format_bar_series(["a", "b"], [1.0, 2.0])
        bar_a = text.splitlines()[0].count("#")
        bar_b = text.splitlines()[1].count("#")
        assert bar_b == 2 * bar_a

    def test_zero_values(self):
        text = format_bar_series(["a"], [0.0])
        assert "#" not in text

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            format_bar_series(["a"], [1.0, 2.0])

    def test_unit_suffix(self):
        assert "5s" in format_bar_series(["a"], [5.0], unit="s")
