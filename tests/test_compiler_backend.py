"""Tests for P&R simulation, relocation, bitstream artifacts and the
compile-time model (flow steps 4-6)."""

import pytest

from repro.compiler.bitstream import VirtualBlockImage
from repro.compiler.interface_gen import InterfaceGenerator
from repro.compiler.partitioner import NetlistPartitioner
from repro.compiler.pnr import GlobalPnR, LocalPnR, INTERFACE_FMAX_MHZ
from repro.compiler.relocation import RelocationError, Relocator
from repro.compiler.timing import CompileTimeBreakdown, CompileTimeModel
from repro.hls.frontend import synthesize
from repro.hls.kernels import benchmark


@pytest.fixture(scope="module")
def placed_blocks(partition):
    netlist = synthesize(benchmark("vgg16", "M"))
    part = NetlistPartitioner(partition.block_capacity).partition(netlist)
    local = LocalPnR(block_capacity=partition.block_capacity,
                     footprint=partition.blocks[0].footprint)
    return local.run(part), part


class TestLocalPnR:
    def test_one_placed_block_per_virtual_block(self, placed_blocks):
        placed, part = placed_blocks
        assert len(placed) == part.num_blocks

    def test_utilization_below_one(self, placed_blocks):
        placed, _ = placed_blocks
        assert all(0 < p.utilization <= 1.0 for p in placed)

    def test_fmax_decreases_with_utilization(self):
        assert LocalPnR._fmax(0.2) > LocalPnR._fmax(0.9)

    def test_moderate_fill_meets_shell_clock(self):
        assert LocalPnR._fmax(0.73) >= 250.0

    def test_pathological_fill_misses_timing(self):
        assert LocalPnR._fmax(1.0) < 350.0

    def test_footprint_recorded(self, placed_blocks, partition):
        placed, _ = placed_blocks
        assert all(p.footprint == partition.blocks[0].footprint
                   for p in placed)

    def test_overfull_block_rejected(self, partition):
        netlist = synthesize(benchmark("svhn", "L"))
        part = NetlistPartitioner(
            partition.block_capacity).partition(netlist)
        local = LocalPnR(block_capacity=partition.block_capacity * 0.3,
                         footprint="tiny")
        with pytest.raises(ValueError, match="does not fit"):
            local.run(part)


class TestGlobalPnR:
    def test_fmax_limited_by_worst_block(self, placed_blocks, partition):
        placed, part = placed_blocks
        iface = InterfaceGenerator().generate(part)
        result = GlobalPnR().run(placed, iface)
        worst = min(p.fmax_mhz for p in placed)
        assert result.fmax_mhz == min(worst, INTERFACE_FMAX_MHZ)

    def test_meets_shell_clock(self, placed_blocks, partition):
        placed, part = placed_blocks
        iface = InterfaceGenerator().generate(part)
        assert GlobalPnR(shell_clock_mhz=250).run(placed,
                                                  iface).meets_shell_clock

    def test_empty_design_rejected(self, placed_blocks, partition):
        _, part = placed_blocks
        iface = InterfaceGenerator().generate(part)
        with pytest.raises(ValueError):
            GlobalPnR().run([], iface)


class TestRelocation:
    def test_relocates_to_every_block(self, placed_blocks, partition):
        placed, _ = placed_blocks
        image = VirtualBlockImage.from_placed("app", placed[0])
        relocator = Relocator()
        for block in partition.blocks:
            bound = relocator.relocate(image, block)
            assert bound.target is block
            assert bound.rewrite_time_s < 1.0

    def test_footprint_mismatch_rejected(self, placed_blocks, partition):
        placed, _ = placed_blocks
        image = VirtualBlockImage.from_placed("app", placed[0])
        import dataclasses
        alien = dataclasses.replace(partition.blocks[0],
                                    footprint="other-device")
        with pytest.raises(RelocationError, match="incompatible"):
            Relocator().relocate(image, alien)

    def test_speedup_vs_recompile_over_10x(self, partition):
        model = CompileTimeModel()
        pnr = model.pnr_time_s(150e3)
        speedup = Relocator.speedup_vs_recompile(
            num_physical_blocks=partition.num_blocks,
            pnr_time_s=pnr, rewrite_time_s=0.25)
        assert speedup > 10  # the paper's ">10x" claim


class TestBitstreamImage:
    def test_image_id_stable(self, placed_blocks):
        placed, _ = placed_blocks
        a = VirtualBlockImage.from_placed("app", placed[0])
        b = VirtualBlockImage.from_placed("app", placed[0])
        assert a.image_id == b.image_id

    def test_image_id_distinct_per_block(self, placed_blocks):
        placed, _ = placed_blocks
        if len(placed) < 2:
            pytest.skip("single-block design")
        a = VirtualBlockImage.from_placed("app", placed[0])
        b = VirtualBlockImage.from_placed("app", placed[1])
        assert a.image_id != b.image_id


class TestCompileTimeModel:
    def test_pnr_dominates(self):
        b = CompileTimeModel().breakdown(luts=164.5e3)
        assert 0.80 < b.pnr_fraction < 0.90  # paper: 83.9%

    def test_custom_tools_small(self):
        b = CompileTimeModel().breakdown(luts=164.5e3)
        assert 0.005 < b.custom_fraction < 0.03  # paper: 1.6%

    def test_fractions_sum_to_one(self):
        b = CompileTimeModel().breakdown(luts=100e3)
        assert b.pnr_fraction + b.custom_fraction \
            + b.synthesis_fraction == pytest.approx(1.0)

    def test_zero_luts_rejected(self):
        with pytest.raises(ValueError):
            CompileTimeModel().breakdown(luts=0)

    def test_aggregate_sums(self):
        model = CompileTimeModel()
        parts = [model.breakdown(luts=50e3), model.breakdown(luts=100e3)]
        total = CompileTimeBreakdown.aggregate(parts)
        assert total.total_s \
            == pytest.approx(parts[0].total_s + parts[1].total_s)

    def test_aggregate_empty_rejected(self):
        with pytest.raises(ValueError):
            CompileTimeBreakdown.aggregate([])

    def test_partition_dominates_custom_time(self):
        b = CompileTimeModel().breakdown(luts=100e3)
        assert b.partition_s > b.interface_gen_s
        assert b.partition_s > b.relocation_s


class TestFlow:
    def test_compiled_app_valid(self, compiled_medium, partition):
        compiled_medium.validate()
        assert compiled_medium.footprint \
            == partition.blocks[0].footprint

    def test_blocks_match_blocks_for(self, compiled_medium, partition):
        from repro.compiler.partitioner import blocks_for
        expected = blocks_for(compiled_medium.resources,
                              partition.block_capacity)
        # retries may add a block or two when legalization is tight
        assert expected <= compiled_medium.num_blocks <= expected + 2

    def test_meets_shell_clock(self, compiled_large):
        assert compiled_large.fmax_mhz >= 250.0

    def test_breakdown_attached(self, compiled_large):
        assert compiled_large.breakdown.total_s > 0
        assert compiled_large.breakdown.measured_custom_s > 0

    def test_interface_deadlock_free(self, compiled_large):
        assert compiled_large.interface.verify_deadlock_free()

    def test_service_time_from_spec(self, compiled_small):
        assert compiled_small.service_time_s() \
            == pytest.approx(compiled_small.spec.service_time_s())

    def test_compile_with_supplied_netlist(self, flow):
        """Callers with their own post-synthesis netlist skip step 1."""
        from repro.core.programming import custom_kernel
        from repro.netlist.generator import NetlistBuilder
        from repro.fabric.resources import ResourceVector
        builder = NetlistBuilder("byon", seed=1, macro_lut=128)
        builder.add_module(
            "core", ResourceVector(lut=5000, dff=9000, dsp=8,
                                   bram_mb=0.3))
        netlist = builder.build()
        spec = custom_kernel("byon", lut=5000, dff=9000, dsp=8,
                             bram_mb=0.3, service_time_s=3.0)
        app = flow.compile(spec, netlist=netlist)
        app.validate()
        assert app.num_blocks == 1

    def test_compile_rejects_mismatched_netlist(self, flow):
        from repro.core.programming import custom_kernel
        from repro.netlist.generator import NetlistBuilder
        from repro.fabric.resources import ResourceVector
        builder = NetlistBuilder("liar", seed=1, macro_lut=128)
        builder.add_module(
            "core", ResourceVector(lut=90e3, dff=90e3, dsp=0,
                                   bram_mb=0))
        netlist = builder.build()
        tiny_spec = custom_kernel("liar", lut=100, dff=100, dsp=0,
                                  bram_mb=0)
        with pytest.raises(ValueError, match="exceeds the declared"):
            flow.compile(tiny_spec, netlist=netlist)
