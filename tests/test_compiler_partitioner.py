"""Tests for the placement-based netlist partitioner (Section 4)."""

import pytest

from repro.compiler.partitioner import (
    PACKING_HEADROOM,
    NetlistPartitioner,
    blocks_for,
    random_partition,
)
from repro.fabric.resources import ResourceVector
from repro.hls.frontend import synthesize
from repro.hls.kernels import all_benchmarks, benchmark


class TestBlocksFor:
    def test_small_app_one_block(self, partition):
        spec = benchmark("mlp-mnist", "S")
        assert blocks_for(spec.resources, partition.block_capacity) == 1

    def test_table2_block_counts_close_to_paper(self, partition):
        """#Block derived from our partition matches Table 2 within +-1."""
        exact = 0
        for spec in all_benchmarks():
            ours = blocks_for(spec.resources, partition.block_capacity)
            assert abs(ours - spec.paper_blocks) <= 1, spec.name
            exact += ours == spec.paper_blocks
        assert exact >= 17  # 19/21 at the calibrated headroom

    def test_headroom_reduces_per_block_fill(self, partition):
        cap = partition.block_capacity
        spec = benchmark("svhn", "L")
        with_hr = blocks_for(spec.resources, cap)
        without = blocks_for(spec.resources, cap, headroom=1.0)
        assert with_hr >= without


class TestPartitioner:
    @pytest.fixture(scope="class")
    def medium_result(self, partition):
        netlist = synthesize(benchmark("cifar10", "M"))
        return NetlistPartitioner(
            partition.block_capacity).partition(netlist), netlist

    def test_every_primitive_assigned(self, medium_result):
        result, netlist = medium_result
        assert set(result.assignment) == set(netlist.primitives)

    def test_blocks_within_capacity(self, medium_result, partition):
        result, _ = medium_result
        result.validate(partition.block_capacity)

    def test_usage_sums_to_netlist(self, medium_result):
        result, netlist = medium_result
        total = sum(result.block_usage, ResourceVector.zero())
        assert total.lut \
            == pytest.approx(netlist.resource_usage().lut, rel=1e-6)

    def test_flows_consistent_with_cut(self, medium_result):
        result, _ = medium_result
        assert (sum(result.flows.values()) > 0) \
            == (result.cut_bandwidth_bits > 0)

    def test_single_block_app_no_cut(self, partition):
        netlist = synthesize(benchmark("mlp-mnist", "S"))
        result = NetlistPartitioner(
            partition.block_capacity).partition(netlist)
        assert result.num_blocks == 1
        assert result.cut_bandwidth_bits == 0
        assert result.flows == {}

    def test_explicit_block_count_honored(self, partition):
        netlist = synthesize(benchmark("mlp-mnist", "S"))
        result = NetlistPartitioner(
            partition.block_capacity).partition(netlist, num_blocks=3)
        assert result.num_blocks == 3

    def test_impossible_partition_raises(self, partition):
        netlist = synthesize(benchmark("svhn", "L"))
        tiny = partition.block_capacity * 0.05
        with pytest.raises(RuntimeError, match="failed"):
            NetlistPartitioner(tiny, max_retries=0).partition(
                netlist, num_blocks=2)


class TestPartitionQuality:
    def test_beats_random_partition(self, partition):
        """Section 5.4: the algorithm cuts required inter-block bandwidth
        by ~2.1x versus an unoptimized partition."""
        spec = benchmark("alexnet", "L")
        netlist = synthesize(spec)
        n = blocks_for(spec.resources, partition.block_capacity)
        ours = NetlistPartitioner(
            partition.block_capacity).partition(netlist, num_blocks=n)
        rand = random_partition(netlist, n, partition.block_capacity)
        assert ours.cut_bandwidth_bits < rand.cut_bandwidth_bits
        assert rand.cut_bandwidth_bits / ours.cut_bandwidth_bits > 1.5

    def test_random_partition_covers_everything(self, partition):
        netlist = synthesize(benchmark("vgg16", "M"))
        result = random_partition(netlist, 4, partition.block_capacity)
        assert set(result.assignment) == set(netlist.primitives)

    def test_headroom_constant_sane(self):
        assert 0.5 < PACKING_HEADROOM < 1.0
