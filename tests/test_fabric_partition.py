"""Tests for the Architecture Layer's fabric partitioning (Fig. 7, §5.3)."""

import pytest

from repro.fabric.device import ColumnType
from repro.fabric.partition import (
    BufferModel,
    PartitionConstraints,
    PartitionPlanner,
    RegionKind,
)
from repro.fabric.devices import make_xcvu37p


class TestBufferModel:
    def test_per_channel_bram_matches_width_depth(self):
        bm = BufferModel(channel_width_bits=512, fifo_depth=1024)
        assert bm.per_channel().bram_mb \
            == pytest.approx(512 * 1024 * 2 / 1e6)

    def test_all_channels_buffered_without_optimization(self):
        bm = BufferModel(ports_per_block=4)
        assert bm.buffered_channels(15, 3, False) == 60

    def test_only_boundary_channels_with_optimization(self):
        bm = BufferModel(inter_die_lanes=2, transceiver_channels=4)
        assert bm.buffered_channels(15, 3, True) == 2 * 2 + 4

    def test_optimization_reduces_demand(self):
        bm = BufferModel()
        with_opt = bm.communication_demand(15, 3, True)
        without = bm.communication_demand(15, 3, False)
        assert with_opt.total_cost() < without.total_cost()

    def test_unbuffered_channels_still_pay_control(self):
        bm = BufferModel()
        demand = bm.communication_demand(15, 3, True)
        # more LUTs than buffered channels alone would need
        buffered = bm.buffered_channels(15, 3, True)
        assert demand.lut > buffered * bm.control_luts


class TestPlannedPartition:
    def test_fifteen_blocks_five_per_die(self, partition):
        assert partition.num_blocks == 15
        assert partition.blocks_per_die == 5

    def test_blocks_identical(self, partition):
        footprints = {b.footprint for b in partition.blocks}
        capacities = {b.capacity for b in partition.blocks}
        assert len(footprints) == 1 and len(capacities) == 1

    def test_block_capacity_matches_table4_shape(self, partition):
        cap = partition.block_capacity
        # Table 4: 79.2k LUT / 158.4k DFF / 580 DSP / 4.22 Mb
        assert cap.lut == pytest.approx(79.2e3, rel=0.10)
        assert cap.dff == pytest.approx(2 * cap.lut)
        assert cap.dsp == pytest.approx(580, rel=0.05)
        assert cap.bram_mb == pytest.approx(4.22, rel=0.05)

    def test_reserved_below_ten_percent(self, partition):
        assert partition.reserved_fraction() < 0.10

    def test_blocks_do_not_cross_die_boundaries(self, partition):
        for block in partition.blocks:
            die = partition.device.die(block.die_index)
            assert (block.clock_region_row + block.height_clock_regions
                    <= die.clock_region_rows)

    def test_blocks_clock_aligned(self, partition):
        for block in partition.blocks:
            assert block.clock_region_row % block.height_clock_regions == 0

    def test_validate_passes(self, partition):
        partition.validate()

    def test_regions_cover_all_kinds(self, partition):
        kinds = {r.kind for r in partition.regions}
        assert kinds == {RegionKind.USER, RegionKind.COMMUNICATION,
                         RegionKind.SERVICE, RegionKind.TRANSCEIVER}

    def test_user_plus_reserved_below_device(self, partition):
        total = partition.user_resources() \
            + partition.reserved_resources()
        assert total.fits_in(partition.device.capacity)

    def test_relocation_compatibility_all_pairs(self, partition):
        first = partition.blocks[0]
        assert all(first.compatible_with(b) for b in partition.blocks)

    def test_describe_mentions_counts(self, partition):
        text = partition.describe()
        assert "15 identical physical blocks" in text


class TestDesignSpaceExploration:
    def test_candidate_count_small(self, device):
        # Section 5.3: "our search space is relatively small (<10)"
        assert len(PartitionPlanner(device).candidates()) < 10

    def test_optimal_maximizes_user_fraction(self, device):
        planner = PartitionPlanner(device)
        best = planner.plan()
        feasible = [c for c in planner.candidates()
                    if c.reserved_fraction() <= 0.10
                    and c.num_blocks >= 8]
        assert best.user_fraction() \
            == max(c.user_fraction() for c in feasible)

    def test_infeasible_constraints_raise(self, device):
        constraints = PartitionConstraints(max_reserved_fraction=1e-6)
        with pytest.raises(RuntimeError, match="no feasible partition"):
            PartitionPlanner(device, constraints).plan()

    def test_min_blocks_constraint_respected(self, device):
        constraints = PartitionConstraints(min_blocks_per_device=8)
        part = PartitionPlanner(device, constraints).plan()
        assert part.num_blocks >= 8

    def test_heterogeneous_dies_rejected(self):
        device = make_xcvu37p()
        device.dies[0].tile_rows = 480  # corrupt one die
        device.dies[0].clock_region_rows = 10
        with pytest.raises(ValueError, match="identical column grids"):
            PartitionPlanner(device)


class TestBufferRemovalOptimization:
    """Section 5.3: removing intra-FPGA buffers cut reserved resources by
    82.3% and kept the total below 10%."""

    def test_reserved_demand_reduction_large(self, device):
        bm = BufferModel()
        cons = PartitionConstraints()
        fixed_lut = cons.service_luts + cons.pipeline_luts
        from repro.fabric.resources import ResourceVector
        fixed = ResourceVector(lut=fixed_lut, dff=fixed_lut * 2,
                               bram_mb=cons.service_bram_mb)
        with_opt = (bm.communication_demand(15, 3, True)
                    + fixed).total_cost()
        without = (bm.communication_demand(15, 3, False)
                   + fixed).total_cost()
        reduction = 1 - with_opt / without
        assert 0.60 < reduction < 0.95  # paper: 82.3%

    def test_unoptimized_partition_reserves_more(self, device, partition):
        cons = PartitionConstraints(remove_intra_fpga_buffers=False,
                                    max_reserved_fraction=1.0)
        unopt = PartitionPlanner(device, cons).plan()
        assert unopt.reserved_fraction() > partition.reserved_fraction()

    def test_unoptimized_blocks_lose_bram(self, device, partition):
        cons = PartitionConstraints(remove_intra_fpga_buffers=False,
                                    max_reserved_fraction=1.0)
        unopt = PartitionPlanner(device, cons).plan()
        assert unopt.block_capacity.bram_mb \
            < partition.block_capacity.bram_mb


class TestHardenedSystemRegions:
    """Section 3.5.2's further optimization: system circuits in hard IP."""

    def test_hardening_reduces_reserved(self, device, partition):
        cons = PartitionConstraints(hardened_system_regions=True)
        hardened = PartitionPlanner(device, cons).plan()
        assert hardened.reserved_fraction() \
            <= partition.reserved_fraction()

    def test_hardening_grows_user_blocks(self, device, partition):
        cons = PartitionConstraints(hardened_system_regions=True)
        hardened = PartitionPlanner(device, cons).plan()
        assert hardened.block_capacity.total_cost() \
            >= partition.block_capacity.total_cost()

    def test_hardening_rescues_unoptimized_buffers(self, device):
        """Even without buffer removal, hard IP absorbs the cost."""
        cons = PartitionConstraints(remove_intra_fpga_buffers=False,
                                    hardened_system_regions=True)
        part = PartitionPlanner(device, cons).plan()
        assert part.reserved_fraction() < 0.10
