"""Tests for same-function physical-block sharing (Section 3.4 option)."""

import pytest

from repro.runtime.sharing import (
    FunctionSharingController,
    verify_function_sharing,
)


@pytest.fixture()
def controller(cluster):
    return FunctionSharingController(cluster, max_sharers=2)


def fill_with(controller, app, start_rid=0):
    """Deploy copies until the cluster refuses; returns deployments."""
    live = []
    rid = start_rid
    while (d := controller.try_deploy(app, rid, 0.0)) is not None:
        live.append(d)
        rid += 1
        if len(live) > 200:
            raise AssertionError("sharing never saturates")
    return live


class TestSharingAdmission:
    def test_exclusive_path_preferred(self, controller, compiled_small):
        d1 = controller.try_deploy(compiled_small, 0, 0.0)
        d2 = controller.try_deploy(compiled_small, 1, 0.0)
        # plenty of free blocks: both run exclusively at full speed
        assert d1.placement.addresses != d2.placement.addresses
        assert d2.service_time_s \
            == pytest.approx(compiled_small.service_time_s())

    def test_sharing_kicks_in_when_full(self, controller,
                                        compiled_large):
        live = fill_with(controller, compiled_large)
        exclusive = [d for d in live
                     if controller.sharers_of(d.request_id) >= 1]
        shared = [d for d in live if d.reconfig_time_s == 0.0]
        # with max_sharers=2 the cluster admits ~2x the exclusive count
        assert len(shared) >= len(exclusive) // 3
        verify_function_sharing(controller)

    def test_shared_throughput_halved(self, controller,
                                      compiled_large):
        live = fill_with(controller, compiled_large)
        shared = [d for d in live if d.reconfig_time_s == 0.0]
        assert shared, "expected at least one shared admission"
        base = compiled_large.service_time_s()
        for d in shared:
            assert d.service_time_s == pytest.approx(2 * base)

    def test_no_sharing_across_functions(self, controller,
                                         compiled_small,
                                         compiled_medium):
        # saturate with smalls, then ask for a medium: it may NOT share
        # a small's blocks
        fill_with(controller, compiled_small)
        d = controller.try_deploy(compiled_medium, 900, 0.0)
        assert d is None
        verify_function_sharing(controller)

    def test_max_sharers_cap(self, cluster, compiled_large):
        controller = FunctionSharingController(cluster, max_sharers=3)
        live = fill_with(controller, compiled_large)
        counts = [controller.sharers_of(d.request_id) for d in live]
        assert max(counts) <= 3
        verify_function_sharing(controller)

    def test_invalid_max_sharers(self, cluster):
        with pytest.raises(ValueError):
            FunctionSharingController(cluster, max_sharers=0)


class TestSharingRelease:
    def test_guest_release_keeps_host_running(self, controller,
                                              compiled_large):
        live = fill_with(controller, compiled_large)
        guest = next(d for d in live if d.reconfig_time_s == 0.0)
        host_blocks = set(guest.placement.addresses)
        controller.release(guest)
        # the blocks are still allocated (host owns them)
        still = {a for d in controller.running()
                 for a in d.placement.addresses}
        assert host_blocks <= still
        verify_function_sharing(controller)

    def test_host_release_promotes_guest(self, controller,
                                         compiled_large):
        live = fill_with(controller, compiled_large)
        guest = next(d for d in live if d.reconfig_time_s == 0.0)
        host_rid = controller._shared_with[guest.request_id]
        host = controller.deployments[host_rid]
        controller.release(host)
        # the guest survives and now owns its blocks in the DB
        assert guest.request_id in controller.deployments
        owner = controller.resource_db.owner_of(
            guest.placement.addresses[0])
        assert owner == guest.request_id
        verify_function_sharing(controller)

    def test_full_teardown_leaves_cluster_clean(self, controller,
                                                compiled_large):
        live = fill_with(controller, compiled_large)
        for d in list(live):
            controller.release(d)
        assert controller.busy_blocks() == 0
        for memory in controller.memories.values():
            assert memory.used_bytes() == 0

    def test_release_order_host_then_all_guests(self, cluster,
                                                compiled_large):
        controller = FunctionSharingController(cluster, max_sharers=4)
        live = fill_with(controller, compiled_large)
        # release in reverse-id order (guests after hosts interleaved)
        for d in sorted(live, key=lambda d: d.request_id):
            controller.release(d)
        assert controller.busy_blocks() == 0
