"""Shared fixtures.

Expensive artifacts (fabric partition, cluster, compiled applications) are
session-scoped: they are immutable once built, and every consumer treats
them as read-only.  Anything stateful (controllers, managers, memories) is
function-scoped and built fresh per test.
"""

from __future__ import annotations

import pytest

from repro.cluster.cluster import FPGACluster, make_cluster
from repro.compiler.flow import CompilationFlow
from repro.fabric.devices import make_xcvu37p
from repro.fabric.partition import FabricPartition, PartitionPlanner
from repro.hls.kernels import benchmark


@pytest.fixture(scope="session")
def device():
    return make_xcvu37p()

@pytest.fixture(scope="session")
def partition(device) -> FabricPartition:
    return PartitionPlanner(device).plan()


@pytest.fixture(scope="session")
def cluster() -> FPGACluster:
    return make_cluster(num_boards=4)


@pytest.fixture(scope="session")
def flow(cluster) -> CompilationFlow:
    return CompilationFlow(fabric=cluster.partition)


@pytest.fixture(scope="session")
def compiled_small(flow):
    """A 1-block application (mlp-mnist-S)."""
    return flow.compile(benchmark("mlp-mnist", "S"))


@pytest.fixture(scope="session")
def compiled_medium(flow):
    """A mid-size multi-block application (cifar10-M)."""
    return flow.compile(benchmark("cifar10", "M"))


@pytest.fixture(scope="session")
def compiled_large(flow):
    """A 10-ish-block application (svhn-L)."""
    return flow.compile(benchmark("svhn", "L"))


@pytest.fixture(scope="session")
def compiled_apps(compiled_small, compiled_medium, compiled_large):
    """Name-indexed app dictionary for simulator runs."""
    return {app.name: app
            for app in (compiled_small, compiled_medium, compiled_large)}
