"""Tests for Algorithm 1 (greedy packing)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.packing import GreedyPacker
from repro.fabric.resources import ResourceVector
from repro.netlist.netlist import Netlist
from repro.netlist.primitives import PrimitiveType


def lut_chain(n):
    nl = Netlist()
    prims = [nl.add_primitive(PrimitiveType.LUT) for _ in range(n)]
    for a, b in zip(prims, prims[1:]):
        nl.add_net(a, [b])
    return nl


def two_cliques(k):
    """Two densely connected groups joined by one thin net."""
    nl = Netlist()
    left = [nl.add_primitive(PrimitiveType.LUT) for _ in range(k)]
    right = [nl.add_primitive(PrimitiveType.LUT) for _ in range(k)]
    for group in (left, right):
        for i, a in enumerate(group):
            for b in group[i + 1:]:
                nl.add_net(a, [b])
    nl.add_net(left[-1], [right[0]])
    return nl, left, right


class TestPacking:
    def test_every_primitive_packed_once(self):
        nl = lut_chain(50)
        clusters = GreedyPacker(ResourceVector(lut=10, dff=10)).pack(nl)
        seen = [uid for c in clusters for uid in c.members]
        assert sorted(seen) == sorted(nl.primitives)

    def test_capacity_respected(self):
        nl = lut_chain(64)
        cap = ResourceVector(lut=7, dff=7)
        for cluster in GreedyPacker(cap).pack(nl):
            assert cluster.resources.fits_in(cap)

    def test_attraction_keeps_cliques_together(self):
        nl, left, right = two_cliques(6)
        cap = ResourceVector(lut=6, dff=6)
        clusters = GreedyPacker(cap, seed=3).pack(nl)
        # no cluster should mix many members of both cliques
        for cluster in clusters:
            in_left = sum(1 for u in cluster.members if u in set(left))
            in_right = len(cluster.members) - in_left
            assert min(in_left, in_right) <= 1

    def test_small_clusters_merged(self):
        nl = lut_chain(21)
        cap = ResourceVector(lut=10, dff=10)
        clusters = GreedyPacker(cap, merge_threshold=0.25,
                                seed=0).pack(nl)
        fills = [c.resources.utilization_of(cap) for c in clusters]
        # after merging, at most one under-filled straggler cluster
        assert sum(1 for f in fills if f < 0.25) <= 1

    def test_cluster_uids_renumbered(self):
        nl = lut_chain(30)
        clusters = GreedyPacker(ResourceVector(lut=8, dff=8)).pack(nl)
        assert [c.uid for c in clusters] == list(range(len(clusters)))

    def test_deterministic_per_seed(self):
        nl = lut_chain(40)
        cap = ResourceVector(lut=9, dff=9)
        a = GreedyPacker(cap, seed=11).pack(nl)
        b = GreedyPacker(cap, seed=11).pack(nl)
        assert [c.members for c in a] == [c.members for c in b]

    def test_oversized_primitive_gets_own_cluster(self):
        nl = Netlist()
        big = nl.add_primitive(
            PrimitiveType.MACRO,
            resources=ResourceVector(lut=100, dff=100))
        small = nl.add_primitive(PrimitiveType.LUT)
        nl.add_net(big, [small])
        clusters = GreedyPacker(ResourceVector(lut=10, dff=10)).pack(nl)
        assert any(big in c.members and len(c) == 1 for c in clusters) \
            or any(big in c.members for c in clusters)

    def test_empty_netlist(self):
        assert GreedyPacker(ResourceVector(lut=10)).pack(Netlist()) == []


class TestPackingProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=80),
           st.integers(min_value=2, max_value=20))
    def test_partition_property(self, n, cap_lut):
        nl = lut_chain(n)
        clusters = GreedyPacker(
            ResourceVector(lut=cap_lut, dff=cap_lut)).pack(nl)
        members = sorted(uid for c in clusters for uid in c.members)
        assert members == sorted(nl.primitives)
        total = sum((c.resources for c in clusters),
                    ResourceVector.zero())
        assert total.lut == pytest.approx(n)
