"""Tests for live migration (checkpoint / transplant / resume)."""

import pytest

from repro.obs.tracer import Tracer
from repro.runtime.controller import MIGRATION_DMA_BYTES_PER_S, \
    SystemController
from repro.runtime.guard import DegradedModeGuard, GuardConfig
from repro.runtime.isolation import verify_isolation


@pytest.fixture()
def controller(cluster):
    return SystemController(cluster)


class TestCheckpoint:
    def test_checkpoint_cost_model(self, controller, compiled_medium):
        controller.try_deploy(compiled_medium, 1, 0.0)
        ckpt = controller.checkpoint(1)
        dram = sum(seg.length
                   for _, seg in controller._segments_of[1])
        assert ckpt.dram_bytes == dram > 0
        beats = sum(ch.fifo_depth + ch.init_tokens
                    for ch in compiled_medium.interface.channels)
        assert ckpt.fifo_beats == beats > 0
        drain = beats / (compiled_medium.fmax_mhz * 1e6)
        copy = dram / MIGRATION_DMA_BYTES_PER_S
        assert ckpt.capture_s == pytest.approx(drain + copy)
        assert ckpt.restore_s == pytest.approx(copy + drain)
        assert ckpt.pause_s == pytest.approx(
            ckpt.capture_s + ckpt.restore_s)

    def test_unknown_request_raises(self, controller):
        with pytest.raises(KeyError, match="not deployed"):
            controller.checkpoint(42)


class TestMigrate:
    def test_migrate_moves_everything(self, controller,
                                      compiled_medium):
        d = controller.try_deploy(compiled_medium, 1, 0.0)
        old_addresses = set(d.placement.addresses)
        old_boards = set(d.placement.boards)
        target = [b.board_id for b in controller.cluster.boards
                  if b.board_id not in old_boards][:1]
        pause = controller.migrate(1, to_boards=target, now=5.0)
        assert pause is not None and pause > 0
        assert d.placement.boards == target
        assert set(d.placement.addresses).isdisjoint(old_addresses)
        # resource DB ownership matches the new placement
        assert sorted(controller.resource_db.blocks_of(1)) \
            == sorted(d.placement.addresses)
        # DRAM followed the move
        for board in target:
            assert d.tenant in controller.memories[board].tenants()
        for board in old_boards - set(target):
            assert d.tenant not in \
                controller.memories[board].tenants()
        # accounting: deployment + controller counters, origin intact
        assert d.migrations == 1
        assert d.migration_pause_s == pytest.approx(pause)
        assert controller.migrations_performed == 1
        assert controller.migration_pause_s == pytest.approx(pause)
        assert d.deployed_at == 0.0  # never changes across moves
        verify_isolation(controller)

    def test_migrate_unknown_request_raises(self, controller):
        with pytest.raises(KeyError, match="not deployed"):
            controller.migrate(7)

    def test_no_feasible_target_is_a_clean_no_op(self, controller,
                                                 compiled_medium):
        d = controller.try_deploy(compiled_medium, 1, 0.0)
        before = list(d.placement.addresses)
        assert controller.migrate(1, to_boards=[]) is None
        assert list(d.placement.addresses) == before
        assert d.migrations == 0
        assert controller.migrations_performed == 0
        assert sorted(controller.resource_db.blocks_of(1)) \
            == sorted(before)
        verify_isolation(controller)

    def test_never_lands_on_failed_board(self, controller,
                                         compiled_small):
        d = controller.try_deploy(compiled_small, 1, 0.0)
        victim = next(b.board_id for b in controller.cluster.boards
                      if b.board_id not in d.placement.boards)
        controller.fail_board(victim, now=1.0)
        assert controller.migrate(1, to_boards=[victim],
                                  now=2.0) is None
        assert d.placement.boards != [victim]

    def test_never_lands_on_quarantined_board(self, controller,
                                              compiled_small):
        d = controller.try_deploy(compiled_small, 1, 0.0)
        guard = DegradedModeGuard(GuardConfig(failure_threshold=1))
        controller.attach_guard(guard)
        victim = next(b.board_id for b in controller.cluster.boards
                      if b.board_id not in d.placement.boards)
        guard.record_board_failure(victim, now=1.0)
        assert victim in guard.excluded_boards()
        assert controller.migrate(1, to_boards=[victim],
                                  now=2.0) is None
        assert d.placement.boards != [victim]

    def test_dram_exhaustion_rolls_back(self, controller,
                                        compiled_medium):
        d = controller.try_deploy(compiled_medium, 1, 0.0)
        source = d.placement.boards[0]
        target = next(b.board_id for b in controller.cluster.boards
                      if b.board_id != source)
        # exhaust the destination's DRAM so _map_memory must fail
        memory = controller.memories[target]
        memory.allocate("hog",
                        memory.capacity_bytes - memory.used_bytes())
        before = list(d.placement.addresses)
        assert controller.migrate(1, to_boards=[target]) is None
        # fully intact on the source: blocks, segments, demand
        assert list(d.placement.addresses) == before
        assert d.tenant in controller.memories[source].tenants()
        assert controller._segments_of[1]
        assert d.migrations == 0
        verify_isolation(controller)
        # the deployment still tears down cleanly
        controller.release(d, now=3.0)
        assert 1 not in controller.deployments

    def test_migrate_audited_and_traced(self, controller,
                                        compiled_medium):
        tracer = Tracer()
        controller.attach_tracer(tracer)
        d = controller.try_deploy(compiled_medium, 1, 0.0)
        old_boards = list(d.placement.boards)
        target = [b.board_id for b in controller.cluster.boards
                  if b.board_id not in old_boards][:1]
        pause = controller.migrate(1, to_boards=target, now=4.0,
                                   reason="unit-test")
        events = [e for e in tracer.entries()
                  if e["name"] == "ctrl.migrate"]
        assert len(events) == 1
        fields = events[0]["fields"]
        assert fields["request"] == 1
        assert fields["reason"] == "unit-test"
        assert fields["from_boards"] == old_boards
        assert fields["to_boards"] == target
        assert fields["pause_s"] == pytest.approx(pause)
        assert fields["blocks_by_board"] \
            == [(target[0], d.num_blocks)]
        entry = [e for e in controller.audit.entries()
                 if e.request_id == 1
                 and e.event.value == "migrate"]
        assert len(entry) == 1

    def test_migration_pause_charged_via_service_flow(
            self, controller, compiled_medium, compiled_small):
        """A migrated request's completion slips by the pause when the
        experiment loop applies it as a corunner-style penalty."""
        d = controller.try_deploy(compiled_medium, 1, 0.0)
        pause = controller.migrate(1, now=2.0)
        assert pause is not None
        assert d.migration_pause_s == pytest.approx(pause)
