"""Tests for the baseline managers (per-device, slot-based, AmorphOS)."""

import pytest

from repro.baselines.amorphos import AmorphOSManager
from repro.baselines.base import ClusterManager
from repro.baselines.per_device import PerDeviceManager
from repro.baselines.slot_based import SlotBasedManager
from repro.runtime.controller import SystemController


class TestManagerProtocol:
    @pytest.mark.parametrize("factory", [
        PerDeviceManager, SlotBasedManager, AmorphOSManager,
        SystemController])
    def test_satisfies_protocol(self, cluster, factory):
        assert isinstance(factory(cluster), ClusterManager)


class TestPerDevice:
    def test_whole_board_per_app(self, cluster, compiled_small):
        mgr = PerDeviceManager(cluster)
        d = mgr.try_deploy(compiled_small, 1, 0.0)
        # even a 1-block app burns a full board (the Fig. 2a waste)
        assert d.num_blocks == cluster.blocks_per_board
        assert mgr.busy_blocks() == cluster.blocks_per_board

    def test_at_most_four_concurrent(self, cluster, compiled_small):
        mgr = PerDeviceManager(cluster)
        deployments = [mgr.try_deploy(compiled_small, i, 0.0)
                       for i in range(4)]
        assert all(d is not None for d in deployments)
        assert mgr.try_deploy(compiled_small, 4, 0.0) is None

    def test_release_frees_board(self, cluster, compiled_small):
        mgr = PerDeviceManager(cluster)
        ds = [mgr.try_deploy(compiled_small, i, 0.0) for i in range(4)]
        mgr.release(ds[2])
        assert mgr.free_boards() == 1
        assert mgr.try_deploy(compiled_small, 9, 0.0) is not None

    def test_full_device_reconfig(self, cluster, compiled_small):
        mgr = PerDeviceManager(cluster)
        d = mgr.try_deploy(compiled_small, 1, 0.0)
        assert d.reconfig_time_s \
            == pytest.approx(cluster.reconfigurer.full_device_time_s())

    def test_wrong_release_rejected(self, cluster, compiled_small):
        mgr = PerDeviceManager(cluster)
        d = mgr.try_deploy(compiled_small, 1, 0.0)
        mgr.release(d)
        with pytest.raises(RuntimeError):
            mgr.release(d)


class TestSlotBased:
    def test_small_app_takes_one_slot(self, cluster, compiled_small):
        mgr = SlotBasedManager(cluster, slots_per_fpga=4)
        assert mgr.slots_needed(compiled_small) == 1

    def test_large_app_takes_multiple_slots(self, cluster,
                                            compiled_large):
        mgr = SlotBasedManager(cluster, slots_per_fpga=4)
        assert mgr.slots_needed(compiled_large) >= 2

    def test_sixteen_small_apps_fit(self, cluster, compiled_small):
        mgr = SlotBasedManager(cluster, slots_per_fpga=4)
        for i in range(16):
            assert mgr.try_deploy(compiled_small, i, 0.0) is not None
        assert mgr.try_deploy(compiled_small, 16, 0.0) is None

    def test_internal_fragmentation_vs_vital(self, cluster,
                                             compiled_small):
        """The Fig. 2b story: slots waste more than ViTAL's blocks."""
        slot = SlotBasedManager(cluster)
        vital = SystemController(cluster)
        slot.try_deploy(compiled_small, 1, 0.0)
        vital.try_deploy(compiled_small, 1, 0.0)
        assert slot.busy_blocks() > vital.busy_blocks()

    def test_single_board_only(self, cluster, compiled_large):
        mgr = SlotBasedManager(cluster, slots_per_fpga=4)
        d = mgr.try_deploy(compiled_large, 1, 0.0)
        assert d is not None and not d.spans_boards

    def test_release(self, cluster, compiled_medium):
        mgr = SlotBasedManager(cluster)
        d = mgr.try_deploy(compiled_medium, 1, 0.0)
        mgr.release(d)
        assert mgr.busy_blocks() == 0

    def test_invalid_slot_count(self, cluster):
        with pytest.raises(ValueError):
            SlotBasedManager(cluster, slots_per_fpga=0)


class TestAmorphOS:
    def test_coresidence_on_one_board(self, cluster, compiled_small):
        mgr = AmorphOSManager(cluster)
        d1 = mgr.try_deploy(compiled_small, 1, 0.0)
        d2 = mgr.try_deploy(compiled_small, 2, 0.0)
        # best-fit packs both small apps onto the same board
        assert d1.placement.boards == d2.placement.boards

    def test_admission_pauses_coresidents(self, cluster,
                                          compiled_small):
        mgr = AmorphOSManager(cluster)
        d1 = mgr.try_deploy(compiled_small, 1, 0.0)
        d2 = mgr.try_deploy(compiled_small, 2, 0.0)
        assert d1.corunner_penalties == {}
        assert d2.corunner_penalties \
            == {1: pytest.approx(d2.reconfig_time_s)}

    def test_full_device_reconfig_cost(self, cluster, compiled_small):
        mgr = AmorphOSManager(cluster)
        d = mgr.try_deploy(compiled_small, 1, 0.0)
        assert d.reconfig_time_s \
            == pytest.approx(cluster.reconfigurer.full_device_time_s())

    def test_max_residents_enforced(self, cluster, compiled_small):
        mgr = AmorphOSManager(cluster, max_residents=2)
        for i in range(8):   # 2 per board x 4 boards
            assert mgr.try_deploy(compiled_small, i, 0.0) is not None
        assert mgr.try_deploy(compiled_small, 9, 0.0) is None

    def test_combination_counting(self, cluster, compiled_small,
                                  compiled_medium):
        mgr = AmorphOSManager(cluster, max_residents=3)
        mgr.try_deploy(compiled_small, 1, 0.0)
        mgr.try_deploy(compiled_medium, 2, 0.0)
        assert mgr.combination_count >= 2  # {S} and a second combo

    def test_no_multi_fpga(self, cluster, compiled_large):
        mgr = AmorphOSManager(cluster)
        d = mgr.try_deploy(compiled_large, 1, 0.0)
        assert d is not None and not d.spans_boards

    def test_two_huge_apps_cannot_combine(self, cluster):
        """Workload set #3's failure mode: combinations infeasible."""
        from repro.hls.kernels import benchmark
        from repro.compiler.flow import CompilationFlow
        flow = CompilationFlow(fabric=cluster.partition)
        huge = flow.compile(benchmark("svhn", "L"))      # 31.3 Mb BRAM
        huge2 = flow.compile(benchmark("cifar10", "L"))  # 26.9 Mb BRAM
        mgr = AmorphOSManager(cluster)
        d1 = mgr.try_deploy(huge, 1, 0.0)
        d2 = mgr.try_deploy(huge2, 2, 0.0)
        assert d1.placement.boards != d2.placement.boards

    def test_release_restores_capacity(self, cluster, compiled_large):
        mgr = AmorphOSManager(cluster)
        deployed = []
        rid = 0
        while (d := mgr.try_deploy(compiled_large, rid, 0.0)) is not None:
            deployed.append(d)
            rid += 1
        mgr.release(deployed[0])
        assert mgr.try_deploy(compiled_large, 99, 0.0) is not None

    def test_release_unknown_rejected(self, cluster, compiled_small):
        mgr = AmorphOSManager(cluster)
        d = mgr.try_deploy(compiled_small, 1, 0.0)
        mgr.release(d)
        with pytest.raises(RuntimeError):
            mgr.release(d)
