"""Tests for the dataflow views (levels, SCCs, partition flows)."""

import pytest

from repro.netlist.dataflow import DataflowGraph
from repro.netlist.netlist import Netlist
from repro.netlist.primitives import PrimitiveType


def chain(n, width=8):
    nl = Netlist("chain")
    prims = [nl.add_primitive(PrimitiveType.LUT) for _ in range(n)]
    for a, b in zip(prims, prims[1:]):
        nl.add_net(a, [b], width_bits=width)
    return nl, prims


class TestLevels:
    def test_chain_levels_increase(self):
        nl, prims = chain(5)
        levels = DataflowGraph(nl).levels()
        assert [levels[p] for p in prims] == [0, 1, 2, 3, 4]

    def test_critical_path_of_chain(self):
        nl, _ = chain(7)
        assert DataflowGraph(nl).critical_path_length() == 6

    def test_cycle_members_share_level(self):
        nl, prims = chain(3)
        nl.add_net(prims[2], [prims[0]])  # close the loop
        levels = DataflowGraph(nl).levels()
        assert levels[prims[0]] == levels[prims[1]] == levels[prims[2]]

    def test_empty_netlist(self):
        assert DataflowGraph(Netlist()).critical_path_length() == 0


class TestStructure:
    def test_acyclic_detection(self):
        nl, prims = chain(3)
        g = DataflowGraph(nl)
        assert g.is_acyclic()
        nl2, prims2 = chain(3)
        nl2.add_net(prims2[2], [prims2[0]])
        assert not DataflowGraph(nl2).is_acyclic()

    def test_sources_and_sinks(self):
        nl, prims = chain(4)
        g = DataflowGraph(nl)
        assert g.sources() == [prims[0]]
        assert g.sinks() == [prims[3]]

    def test_condensation_collapses_scc(self):
        nl, prims = chain(4)
        nl.add_net(prims[2], [prims[1]])  # scc {1, 2}
        cond = DataflowGraph(nl).condensation()
        assert cond.number_of_nodes() == 3

    def test_parallel_edges_merge_widths(self):
        nl = Netlist()
        a = nl.add_primitive(PrimitiveType.LUT)
        b = nl.add_primitive(PrimitiveType.LUT)
        nl.add_net(a, [b], width_bits=8)
        nl.add_net(a, [b], width_bits=8)
        g = DataflowGraph(nl)
        assert g.graph[a][b]["width_bits"] == 16


class TestPartitionEdges:
    def test_flows_directed_and_aggregated(self):
        nl, prims = chain(4, width=16)
        assignment = {prims[0]: 0, prims[1]: 0,
                      prims[2]: 1, prims[3]: 1}
        flows = DataflowGraph(nl).partition_edges(assignment)
        assert flows == {(0, 1): 16}

    def test_flows_ignore_intra_partition(self):
        nl, prims = chain(3)
        flows = DataflowGraph(nl).partition_edges(
            {p: 0 for p in prims})
        assert flows == {}

    def test_flows_skip_unassigned(self):
        nl, prims = chain(3)
        flows = DataflowGraph(nl).partition_edges({prims[0]: 0})
        assert flows == {}

    def test_bidirectional_flows_kept_separate(self):
        nl = Netlist()
        a = nl.add_primitive(PrimitiveType.LUT)
        b = nl.add_primitive(PrimitiveType.LUT)
        nl.add_net(a, [b], width_bits=8)
        nl.add_net(b, [a], width_bits=4)
        flows = DataflowGraph(nl).partition_edges({a: 0, b: 1})
        assert flows == {(0, 1): 8, (1, 0): 4}
