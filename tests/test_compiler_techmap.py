"""Tests for the gate-level IR and K-LUT technology mapping."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.techmap import technology_map
from repro.netlist.logic import GateOp, LogicNetwork
from repro.netlist.primitives import PrimitiveType


def xor_tree(width=8):
    net = LogicNetwork("xor_tree")
    bits = [net.add_input(f"i{k}") for k in range(width)]
    while len(bits) > 1:
        bits = [net.add_gate(GateOp.XOR, a, b)
                for a, b in zip(bits[::2], bits[1::2])]
    net.set_output("parity", bits[0])
    return net


class TestLogicNetwork:
    def test_arity_validation(self):
        net = LogicNetwork()
        a = net.add_input("a")
        with pytest.raises(ValueError):
            net.add_gate(GateOp.AND, a)  # AND needs >= 2
        with pytest.raises(ValueError):
            net.add_gate(GateOp.NOT, a, a)

    def test_unknown_fanin(self):
        net = LogicNetwork()
        with pytest.raises(KeyError):
            net.add_gate(GateOp.NOT, 99)

    def test_duplicate_input_rejected(self):
        net = LogicNetwork()
        net.add_input("a")
        with pytest.raises(ValueError):
            net.add_input("a")

    def test_evaluate_parity(self):
        net = xor_tree(4)
        out, _ = net.evaluate({"i0": True, "i1": False, "i2": True,
                               "i3": True})
        assert out["parity"] is True

    def test_ff_delays_by_one_cycle(self):
        net = LogicNetwork()
        d = net.add_input("d")
        q = net.add_ff(d)
        net.set_output("q", q)
        out, state = net.evaluate({"d": True})
        assert out["q"] is False           # reset state
        out, _ = net.evaluate({"d": False}, state)
        assert out["q"] is True            # last cycle's D

    def test_depth_of_chain(self):
        net = LogicNetwork()
        x = net.add_input("x")
        for _ in range(5):
            x = net.add_gate(GateOp.NOT, x)
        net.set_output("y", x)
        assert net.depth() == 5

    def test_constants(self):
        net = LogicNetwork()
        one = net.add_gate(GateOp.CONST1)
        zero = net.add_gate(GateOp.CONST0)
        net.set_output("one", one)
        net.set_output("zero", zero)
        out, _ = net.evaluate({})
        assert out == {"one": True, "zero": False}


class TestTechnologyMap:
    def test_xor8_fits_depth_two_k6(self):
        mapped = technology_map(xor_tree(8), k=6)
        assert mapped.depth() <= 2
        assert all(len(l.leaves) <= 6 for l in mapped.luts.values())

    def test_wider_luts_compress_depth(self):
        # k=2 cannot absorb anything on a 2-input XOR tree, so its LUT
        # depth equals the gate depth; k=6 compresses levels (greedy
        # absorption is not optimal, but it always helps here)
        net = xor_tree(16)
        assert technology_map(net, k=2).depth() == net.depth()
        assert technology_map(net, k=6).depth() < net.depth()

    def test_lut_count_below_gate_count(self):
        net = LogicNetwork.random(num_gates=100, seed=1)
        mapped = technology_map(net)
        assert mapped.num_luts < len(net.combinational_gates())

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            technology_map(xor_tree(4), k=1)

    def test_wide_gate_rejected(self):
        net = LogicNetwork()
        ins = [net.add_input(f"i{k}") for k in range(8)]
        wide = net.add_gate(GateOp.AND, *ins)
        net.set_output("y", wide)
        with pytest.raises(RuntimeError, match="fanins"):
            technology_map(net, k=6)

    def test_ff_passthrough(self):
        net = LogicNetwork()
        a = net.add_input("a")
        b = net.add_input("b")
        g = net.add_gate(GateOp.AND, a, b)
        q = net.add_ff(g)
        net.set_output("q", q)
        mapped = technology_map(net)
        assert len(mapped.flops) == 1

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000),
           vec_seed=st.integers(0, 10_000))
    def test_combinational_equivalence(self, seed, vec_seed):
        net = LogicNetwork.random(num_inputs=6, num_gates=50,
                                  num_outputs=3, seed=seed)
        mapped = technology_map(net, k=6)
        rng = random.Random(vec_seed)
        for _ in range(6):
            vec = {f"i{k}": rng.random() < 0.5 for k in range(6)}
            ref, _ = net.evaluate(vec)
            got, _ = mapped.evaluate(vec)
            assert ref == got

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_sequential_equivalence(self, seed):
        net = LogicNetwork.random(num_inputs=6, num_gates=60,
                                  num_outputs=3, seed=seed,
                                  ff_probability=0.15)
        mapped = technology_map(net, k=6)
        rng = random.Random(seed ^ 0xABCD)
        st_ref: dict = {}
        st_map: dict = {}
        for _ in range(10):
            vec = {f"i{k}": rng.random() < 0.5 for k in range(6)}
            ref, st_ref = net.evaluate(vec, st_ref)
            got, st_map = mapped.evaluate(vec, st_map)
            assert ref == got


class TestLowering:
    def test_to_netlist_counts(self):
        net = LogicNetwork.random(num_gates=60, seed=2,
                                  ff_probability=0.1)
        mapped = technology_map(net)
        netlist = mapped.to_netlist()
        luts = sum(1 for p in netlist.primitives.values()
                   if p.kind is PrimitiveType.LUT)
        ffs = sum(1 for p in netlist.primitives.values()
                  if p.kind is PrimitiveType.FF)
        assert luts == mapped.num_luts
        assert ffs == len(mapped.flops)

    def test_lowered_netlist_partitions(self):
        """The mapped design flows into the rest of the pipeline."""
        from repro.compiler.partitioner import NetlistPartitioner
        from repro.fabric.resources import ResourceVector
        net = LogicNetwork.random(num_inputs=10, num_gates=300,
                                  num_outputs=6, seed=3)
        netlist = technology_map(net).to_netlist()
        block = ResourceVector(lut=60, dff=120, dsp=1, bram_mb=0.1)
        result = NetlistPartitioner(block, seed=1).partition(netlist)
        result.validate(block)
        assert result.num_blocks >= 2
