"""Tests for primitives and the netlist graph."""

import pytest
from hypothesis import given, strategies as st

from repro.fabric.resources import ResourceVector
from repro.netlist.netlist import Netlist, PortDirection
from repro.netlist.primitives import Primitive, PrimitiveType, \
    UNIT_RESOURCES


class TestPrimitive:
    def test_unit_lut(self):
        p = Primitive.unit(0, PrimitiveType.LUT)
        assert p.resources == ResourceVector(lut=1)

    def test_unit_bram_is_36kb(self):
        p = Primitive.unit(1, PrimitiveType.BRAM)
        assert p.resources.bram_mb == pytest.approx(0.036)

    def test_macro_carries_resources(self):
        res = ResourceVector(lut=100, dff=200, dsp=3, bram_mb=0.1)
        p = Primitive.macro(2, res, name="pe")
        assert p.resources == res and p.kind is PrimitiveType.MACRO

    def test_iopad_is_free(self):
        assert UNIT_RESOURCES[PrimitiveType.IOPAD].is_zero()

    def test_is_io(self):
        assert Primitive.unit(0, PrimitiveType.IOPAD).is_io()
        assert not Primitive.unit(1, PrimitiveType.LUT).is_io()


class TestNetlistConstruction:
    def test_uids_sequential(self):
        nl = Netlist()
        a = nl.add_primitive(PrimitiveType.LUT)
        b = nl.add_primitive(PrimitiveType.FF)
        assert (a, b) == (0, 1)

    def test_macro_requires_resources(self):
        nl = Netlist()
        with pytest.raises(ValueError, match="explicit resources"):
            nl.add_primitive(PrimitiveType.MACRO)

    def test_net_rejects_unknown_driver(self):
        nl = Netlist()
        a = nl.add_primitive(PrimitiveType.LUT)
        with pytest.raises(KeyError):
            nl.add_net(99, [a])

    def test_net_rejects_unknown_sink(self):
        nl = Netlist()
        a = nl.add_primitive(PrimitiveType.LUT)
        with pytest.raises(KeyError):
            nl.add_net(a, [99])

    def test_net_rejects_nonpositive_width(self):
        nl = Netlist()
        a = nl.add_primitive(PrimitiveType.LUT)
        b = nl.add_primitive(PrimitiveType.FF)
        with pytest.raises(ValueError):
            nl.add_net(a, [b], width_bits=0)

    def test_add_port_creates_iopad(self):
        nl = Netlist()
        port = nl.add_port("s_axis", PortDirection.INPUT, 64)
        assert nl.primitives[port.primitive_uid].is_io()
        assert nl.input_ports() == [port]
        assert nl.output_ports() == []


class TestNetlistQueries:
    @pytest.fixture()
    def diamond(self):
        """a -> b, a -> c, b -> d, c -> d."""
        nl = Netlist("diamond")
        a, b, c, d = (nl.add_primitive(PrimitiveType.LUT)
                      for _ in range(4))
        nl.add_net(a, [b, c], width_bits=8)
        nl.add_net(b, [d], width_bits=4)
        nl.add_net(c, [d], width_bits=2)
        return nl, (a, b, c, d)

    def test_neighbors(self, diamond):
        nl, (a, b, c, d) = diamond
        assert nl.neighbors(a) == {b, c}
        assert nl.neighbors(d) == {b, c}

    def test_incident_nets(self, diamond):
        nl, (a, b, c, d) = diamond
        assert len(nl.incident_nets(d)) == 2

    def test_resource_usage_sums(self, diamond):
        nl, _ = diamond
        assert nl.resource_usage() == ResourceVector(lut=4)

    def test_cut_bandwidth_zero_when_together(self, diamond):
        nl, prims = diamond
        assignment = {p: 0 for p in prims}
        assert nl.cut_bandwidth(assignment) == 0

    def test_cut_bandwidth_counts_width(self, diamond):
        nl, (a, b, c, d) = diamond
        assignment = {a: 0, b: 0, c: 0, d: 1}
        # nets b->d (4) and c->d (2) cross
        assert nl.cut_bandwidth(assignment) == 6

    def test_cut_bandwidth_multiterminal_counts_per_partition(self,
                                                              diamond):
        nl, (a, b, c, d) = diamond
        assignment = {a: 0, b: 1, c: 2, d: 0}
        # a->{b,c} width 8 reaches two remote partitions -> 16
        assert nl.cut_bandwidth(assignment) \
            == 16 + 4 + 2

    def test_validate_ok(self, diamond):
        nl, _ = diamond
        nl.validate()

    def test_repr_mentions_counts(self, diamond):
        nl, _ = diamond
        assert "4 primitives" in repr(nl)


class TestNetlistProperties:
    @given(st.integers(min_value=2, max_value=40),
           st.integers(min_value=1, max_value=60),
           st.randoms(use_true_random=False))
    def test_chain_plus_random_nets_always_validates(self, n, extra, rng):
        nl = Netlist()
        prims = [nl.add_primitive(PrimitiveType.LUT) for _ in range(n)]
        for a, b in zip(prims, prims[1:]):
            nl.add_net(a, [b])
        for _ in range(extra):
            a = rng.choice(prims)
            b = rng.choice(prims)
            nl.add_net(a, [b], width_bits=rng.randint(1, 64))
        nl.validate()
        assert nl.num_nets == n - 1 + extra

    @given(st.integers(min_value=2, max_value=30))
    def test_single_partition_has_zero_cut(self, n):
        nl = Netlist()
        prims = [nl.add_primitive(PrimitiveType.LUT) for _ in range(n)]
        for a, b in zip(prims, prims[1:]):
            nl.add_net(a, [b], width_bits=32)
        assert nl.cut_bandwidth({p: 7 for p in prims}) == 0
