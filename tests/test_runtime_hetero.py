"""Tests for heterogeneous-cluster support (Section 7 extension)."""

import pytest

from repro.cluster.cluster import FPGACluster, make_cluster, \
    make_heterogeneous_cluster
from repro.hls.kernels import benchmark
from repro.runtime.hetero import HeterogeneousController, \
    HeterogeneousStack
from repro.runtime.isolation import verify_isolation


@pytest.fixture(scope="module")
def hetero_cluster():
    return make_heterogeneous_cluster(
        ["XCVU37P", "XCVU37P", "VU13P", "VU13P"])


@pytest.fixture()
def stack(hetero_cluster):
    return HeterogeneousStack(hetero_cluster)


class TestMixedCluster:
    def test_two_footprint_groups(self, hetero_cluster):
        assert len(hetero_cluster.footprints()) == 2

    def test_footprint_property_rejects_ambiguity(self, hetero_cluster):
        with pytest.raises(ValueError, match="no single footprint"):
            _ = hetero_cluster.footprint

    def test_homogeneous_check_still_enforced(self):
        a = make_cluster(num_boards=1)
        b = make_heterogeneous_cluster(["VU13P"])
        with pytest.raises(ValueError, match="allow_heterogeneous"):
            FPGACluster(boards=[a.boards[0], b.boards[0]],
                        network=a.network)

    def test_same_type_boards_share_footprint(self, hetero_cluster):
        groups = {fp: hetero_cluster.boards_with_footprint(fp)
                  for fp in hetero_cluster.footprints()}
        assert all(len(boards) == 2 for boards in groups.values())

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            make_heterogeneous_cluster([])


class TestHeterogeneousStack:
    def test_compiles_once_per_footprint(self, stack):
        artifacts = stack.compile(benchmark("alexnet", "M"))
        assert set(artifacts) == stack.cluster.footprints()
        block_counts = {app.num_blocks for app in artifacts.values()}
        # bigger blocks on the VU13P group => fewer blocks there
        assert len(block_counts) == 2

    def test_deploy_targets_matching_group(self, stack):
        spec = benchmark("svhn", "L")
        d = stack.deploy(spec)
        assert d is not None
        app_fp = stack.controller.deployments[
            d.request_id].app.footprint
        boards = stack.cluster.boards_with_footprint(app_fp)
        assert set(d.placement.boards) \
            <= {b.board_id for b in boards}
        stack.release(d)

    def test_never_mixes_groups_in_one_placement(self, stack):
        spec = benchmark("resnet18", "L")
        live = []
        while (d := stack.deploy(spec)) is not None:
            live.append(d)
            fps = {stack.cluster.board(b).partition.blocks[0].footprint
                   for b in d.placement.boards}
            assert len(fps) == 1
        assert live
        for d in live:
            stack.release(d)

    def test_spills_to_second_group(self, stack):
        """When the preferred group fills up, the other serves."""
        spec = benchmark("mlp-mnist", "M")
        live = []
        while (d := stack.deploy(spec)) is not None:
            live.append(d)
        groups_used = set()
        for d in live:
            fp = stack.cluster.board(
                d.placement.boards[0]).partition.blocks[0].footprint
            groups_used.add(fp)
        assert groups_used == stack.cluster.footprints()
        for d in live:
            stack.release(d)
        assert stack.controller.busy_blocks() == 0

    def test_isolation_holds_across_groups(self, stack):
        for i, (fam, size) in enumerate([("vgg16", "S"),
                                         ("cifar10", "L"),
                                         ("lenet5", "M")]):
            stack.deploy(benchmark(fam, size))
        verify_isolation(stack.controller)

    def test_manager_adapter_protocol(self, hetero_cluster,
                                      compiled_medium):
        from repro.baselines.base import ClusterManager
        from repro.runtime.hetero import HeterogeneousManagerAdapter
        adapter = HeterogeneousManagerAdapter(hetero_cluster)
        assert isinstance(adapter, ClusterManager)
        d = adapter.try_deploy(compiled_medium, 0, 0.0)
        assert d is not None
        assert adapter.busy_blocks() == d.num_blocks
        adapter.release(d, 1.0)
        assert adapter.busy_blocks() == 0

    def test_adapter_replays_workload(self, hetero_cluster,
                                      compiled_apps):
        from repro.runtime.hetero import HeterogeneousManagerAdapter
        from repro.sim.experiment import run_experiment
        from repro.sim.workload import WorkloadGenerator
        requests = [r for r in WorkloadGenerator(seed=3).generate(
            7, num_requests=25, mean_interarrival_s=3.0)
            if r.spec.name in compiled_apps]
        result = run_experiment(
            HeterogeneousManagerAdapter(hetero_cluster), requests,
            compiled_apps)
        assert result.summary.num_requests == len(requests)

    def test_register_rejects_foreign_footprint(self, hetero_cluster,
                                                cluster):
        from repro.compiler.flow import CompilationFlow
        controller = HeterogeneousController(hetero_cluster)
        # compile against the homogeneous test cluster: same device
        # type, so the footprint matches the XCVU37P group and registers
        flow = CompilationFlow(fabric=cluster.partition)
        app = flow.compile(benchmark("vgg16", "S"))
        controller.register(app)  # accepted: footprint group exists
        # now fake an unknown footprint
        import dataclasses
        alien = dataclasses.replace(app, footprint="unknown-device")
        with pytest.raises(ValueError, match="matches no board group"):
            controller.register(alien)
