"""Tests for controller warm restart (snapshot/restore)."""

import json

import pytest

from repro.runtime.bitstream_db import BitstreamDB
from repro.runtime.controller import SystemController
from repro.runtime.isolation import verify_isolation


@pytest.fixture()
def loaded(cluster, compiled_small, compiled_medium, compiled_large):
    db = BitstreamDB(cluster.footprint)
    for app in (compiled_small, compiled_medium, compiled_large):
        db.register(app)
    controller = SystemController(cluster)
    controller.set_quota("acme", 40)
    d1 = controller.try_deploy(compiled_small, 1, 1.0, tenant="acme")
    d2 = controller.try_deploy(compiled_large, 2, 2.0)
    return controller, db, [d1, d2]


class TestWarmRestart:
    def test_restore_reproduces_state(self, cluster, loaded):
        controller, db, deployments = loaded
        snapshot = controller.snapshot()
        restored = SystemController.restore(cluster, snapshot, db)
        assert set(restored.deployments) == set(controller.deployments)
        assert restored.busy_blocks() == controller.busy_blocks()
        assert restored.quotas == controller.quotas
        verify_isolation(restored)

    def test_restored_controller_operates(self, cluster, loaded,
                                          compiled_medium):
        controller, db, deployments = loaded
        restored = SystemController.restore(cluster,
                                            controller.snapshot(), db)
        d = restored.try_deploy(compiled_medium, 99, 10.0)
        assert d is not None
        # the new placement avoids every pre-restart block
        pre = {a for dep in deployments
               for a in dep.placement.addresses}
        assert set(d.placement.addresses).isdisjoint(pre)
        # releases of pre-restart deployments work through the restored
        # controller
        restored.release(restored.deployments[1], 11.0)
        assert 1 not in restored.deployments

    def test_snapshot_json_serializable(self, loaded):
        controller, _, _ = loaded
        json.dumps(controller.snapshot())  # no exception

    def test_snapshot_roundtrips_through_json(self, cluster, loaded):
        controller, db, _ = loaded
        snapshot = json.loads(json.dumps(controller.snapshot()))
        restored = SystemController.restore(cluster, snapshot, db)
        assert restored.busy_blocks() == controller.busy_blocks()

    def test_corrupt_snapshot_fails_loudly(self, cluster, loaded):
        controller, db, _ = loaded
        snapshot = controller.snapshot()
        # duplicate a deployment: double-books the same blocks
        snapshot["deployments"].append(
            dict(snapshot["deployments"][0], request_id=777))
        with pytest.raises(RuntimeError, match="already allocated"):
            SystemController.restore(cluster, snapshot, db)

    def test_unknown_app_fails_loudly(self, cluster, loaded):
        controller, _, _ = loaded
        empty_db = BitstreamDB(cluster.footprint)
        with pytest.raises(KeyError, match="offline compilation"):
            SystemController.restore(cluster, controller.snapshot(),
                                     empty_db)

    def test_empty_snapshot(self, cluster):
        controller = SystemController(cluster)
        db = BitstreamDB(cluster.footprint)
        restored = SystemController.restore(cluster,
                                            controller.snapshot(), db)
        assert restored.busy_blocks() == 0
