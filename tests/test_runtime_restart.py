"""Tests for controller warm restart (snapshot/restore)."""

import json

import pytest

from repro.runtime.bitstream_db import BitstreamDB
from repro.runtime.controller import SystemController
from repro.runtime.isolation import verify_isolation


@pytest.fixture()
def loaded(cluster, compiled_small, compiled_medium, compiled_large):
    db = BitstreamDB(cluster.footprint)
    for app in (compiled_small, compiled_medium, compiled_large):
        db.register(app)
    controller = SystemController(cluster)
    controller.set_quota("acme", 40)
    d1 = controller.try_deploy(compiled_small, 1, 1.0, tenant="acme")
    d2 = controller.try_deploy(compiled_large, 2, 2.0)
    return controller, db, [d1, d2]


class TestWarmRestart:
    def test_restore_reproduces_state(self, cluster, loaded):
        controller, db, deployments = loaded
        snapshot = controller.snapshot()
        restored = SystemController.restore(cluster, snapshot, db)
        assert set(restored.deployments) == set(controller.deployments)
        assert restored.busy_blocks() == controller.busy_blocks()
        assert restored.quotas == controller.quotas
        verify_isolation(restored)

    def test_restored_controller_operates(self, cluster, loaded,
                                          compiled_medium):
        controller, db, deployments = loaded
        restored = SystemController.restore(cluster,
                                            controller.snapshot(), db)
        d = restored.try_deploy(compiled_medium, 99, 10.0)
        assert d is not None
        # the new placement avoids every pre-restart block
        pre = {a for dep in deployments
               for a in dep.placement.addresses}
        assert set(d.placement.addresses).isdisjoint(pre)
        # releases of pre-restart deployments work through the restored
        # controller
        restored.release(restored.deployments[1], 11.0)
        assert 1 not in restored.deployments

    def test_snapshot_json_serializable(self, loaded):
        controller, _, _ = loaded
        json.dumps(controller.snapshot())  # no exception

    def test_snapshot_roundtrips_through_json(self, cluster, loaded):
        controller, db, _ = loaded
        snapshot = json.loads(json.dumps(controller.snapshot()))
        restored = SystemController.restore(cluster, snapshot, db)
        assert restored.busy_blocks() == controller.busy_blocks()

    def test_corrupt_snapshot_fails_loudly(self, cluster, loaded):
        controller, db, _ = loaded
        snapshot = controller.snapshot()
        # duplicate a deployment: double-books the same blocks
        snapshot["deployments"].append(
            dict(snapshot["deployments"][0], request_id=777))
        with pytest.raises(RuntimeError, match="already allocated"):
            SystemController.restore(cluster, snapshot, db)

    def test_unknown_app_fails_loudly(self, cluster, loaded):
        controller, _, _ = loaded
        empty_db = BitstreamDB(cluster.footprint)
        with pytest.raises(KeyError, match="offline compilation"):
            SystemController.restore(cluster, controller.snapshot(),
                                     empty_db)

    def test_empty_snapshot(self, cluster):
        controller = SystemController(cluster)
        db = BitstreamDB(cluster.footprint)
        restored = SystemController.restore(cluster,
                                            controller.snapshot(), db)
        assert restored.busy_blocks() == 0


class TestDegradationSurvivesRestart:
    """PR 7: the snapshot must carry live degradation -- gray-ICAP
    multipliers, armed transient reconfig faults, and the guard's
    breaker state.  Omitting them made a restart silently heal
    degraded boards and re-admit quarantined ones."""

    def test_icap_multipliers_survive(self, cluster, loaded):
        controller, db, _ = loaded
        controller.degrade_icap(2, latency_multiplier=6.0)
        snapshot = json.loads(json.dumps(controller.snapshot()))
        restored = SystemController.restore(cluster, snapshot, db)
        assert restored.degraded_icaps() == {2: 6.0}

    def test_armed_reconfig_faults_survive(self, cluster, loaded):
        controller, db, _ = loaded
        controller.inject_reconfig_fault(3, attempts=2)
        snapshot = json.loads(json.dumps(controller.snapshot()))
        restored = SystemController.restore(cluster, snapshot, db)
        assert restored._armed_reconfig_faults == {3: 2}

    def test_guard_state_survives(self, cluster, loaded):
        from repro.runtime.guard import DegradedModeGuard, GuardConfig
        controller, db, _ = loaded
        guard = DegradedModeGuard(GuardConfig(failure_threshold=2))
        controller.attach_guard(guard)
        guard.record_board_failure(1, now=5.0)
        guard.record_board_failure(1, now=6.0)  # trips the breaker
        assert 1 in guard.excluded_boards()
        snapshot = json.loads(json.dumps(controller.snapshot()))
        restored = SystemController.restore(cluster, snapshot, db)
        assert restored.guard is not None
        assert restored.guard is not guard
        assert restored.guard.excluded_boards() \
            == guard.excluded_boards()
        assert restored.guard.counters() == guard.counters()
        # breaker clocks carried too: the quarantine expires at the
        # same simulated time on both sides
        guard.advance(1e9)
        restored.guard.advance(1e9)
        assert restored.guard.excluded_boards() \
            == guard.excluded_boards() == frozenset()

    def test_no_guard_snapshot_restores_no_guard(self, cluster,
                                                 loaded):
        controller, db, _ = loaded
        snapshot = controller.snapshot()
        assert snapshot["guard"] is None
        restored = SystemController.restore(cluster, snapshot, db)
        assert restored.guard is None


class TestMigrationStateSurvivesRestart:
    def test_migration_accounting_survives(self, cluster, loaded):
        controller, db, deployments = loaded
        pause = controller.migrate(2, now=5.0, reason="pre-restart")
        assert pause is not None
        snapshot = json.loads(json.dumps(controller.snapshot()))
        restored = SystemController.restore(cluster, snapshot, db)
        assert restored.migrations_performed == 1
        assert restored.migration_pause_s == pytest.approx(pause)
        moved = restored.deployments[2]
        assert moved.migrations == 1
        assert moved.migration_pause_s == pytest.approx(pause)
        # placement carried over post-move, and the restored replica
        # can keep migrating from where the original left off
        assert sorted(moved.placement.addresses) == sorted(
            controller.deployments[2].placement.addresses)
        verify_isolation(restored)
        second = restored.migrate(2, now=9.0)
        if second is not None:
            assert restored.migrations_performed == 2

    def test_legacy_snapshot_defaults_to_zero(self, cluster, loaded):
        """Snapshots written before migration existed restore with
        zeroed counters instead of KeyError."""
        controller, db, _ = loaded
        snapshot = controller.snapshot()
        snapshot.pop("migrations_performed", None)
        snapshot.pop("migration_pause_s", None)
        for entry in snapshot["deployments"]:
            entry.pop("migrations", None)
            entry.pop("migration_pause_s", None)
        restored = SystemController.restore(cluster, snapshot, db)
        assert restored.migrations_performed == 0
        assert restored.migration_pause_s == 0.0
        assert all(d.migrations == 0
                   for d in restored.deployments.values())
