"""Tests for the perf-trajectory schema and gate (repro.analysis.bench)."""

import json
from pathlib import Path

import pytest

from repro.analysis.bench import (BENCH_SCHEMA_VERSION,
                                  BenchSchemaError, append_entry,
                                  flatten_metrics, format_trajectory,
                                  load_bench, merge_metrics,
                                  metric_direction, trajectory_gate,
                                  validate_doc, validate_entry)

REPO_ROOT = Path(__file__).resolve().parent.parent


def entry(**overrides):
    base = {"anchor": "pr9-campaign", "date": "2026-08-08",
            "fingerprint": None, "metrics": {"wall_s": 1.5}}
    base.update(overrides)
    return base


def doc(*entries):
    return {"bench": "perf", "schema": BENCH_SCHEMA_VERSION,
            "entries": list(entries)}


class TestSchema:
    def test_valid_doc_passes(self):
        validate_doc(doc(entry()))

    def test_committed_trajectories_are_schema_valid(self):
        # the migration regression test: the three pre-schema entries
        # (pr6 / pr7 / pr8) must live on in schema-valid form
        perf = load_bench(REPO_ROOT / "BENCH_perf.json")
        robustness = load_bench(REPO_ROOT / "BENCH_robustness.json")
        anchors = {e["anchor"] for e in perf["entries"]} \
            | {e["anchor"] for e in robustness["entries"]}
        assert {"pr6-degraded-mode", "pr7-array-kernel",
                "pr8-live-migration"} <= anchors
        # and the migrated numbers survived verbatim
        pr7 = next(e for e in perf["entries"]
                   if e["anchor"] == "pr7-array-kernel")
        assert pr7["metrics"]["requests_per_s"] == 4467.7
        assert pr7["metrics"]["boards"] == 1024

    @pytest.mark.parametrize("broken, match", [
        (entry(anchor=""), "anchor"),
        (entry(date="08/08/2026"), "date"),
        (entry(date=20260808), "date"),
        (entry(fingerprint=""), "fingerprint"),
        (entry(metrics={}), "metrics"),
        (entry(metrics={"ok": True}), "number"),
        (entry(metrics={"ok": "fast"}), "number"),
        (entry(metrics={"nested": {}}), "empty"),
        (entry(extra=1), "unknown"),
    ])
    def test_broken_entries_are_listed(self, broken, match):
        errors = validate_entry(broken)
        assert errors
        assert any(match in e for e in errors)

    def test_nan_and_inf_rejected(self):
        assert validate_entry(entry(metrics={"x": float("nan")}))
        assert validate_entry(entry(metrics={"x": float("inf")}))

    def test_doc_level_errors(self):
        with pytest.raises(BenchSchemaError, match="schema"):
            validate_doc({"bench": "perf", "schema": 99,
                          "entries": []})
        with pytest.raises(BenchSchemaError, match="entries"):
            validate_doc({"bench": "perf",
                          "schema": BENCH_SCHEMA_VERSION,
                          "entries": {}})

    def test_load_rejects_non_json(self, tmp_path):
        bad = tmp_path / "BENCH_x.json"
        bad.write_text("{nope")
        with pytest.raises(BenchSchemaError, match="JSON"):
            load_bench(bad)


class TestAppend:
    def test_creates_fresh_doc(self, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        returned = append_entry(path, entry())
        assert returned["bench"] == "perf"
        on_disk = load_bench(path)
        assert on_disk == returned
        assert len(on_disk["entries"]) == 1

    def test_appends_and_revalidates(self, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        append_entry(path, entry())
        append_entry(path, entry(date="2026-08-09"))
        assert len(load_bench(path)["entries"]) == 2
        with pytest.raises(BenchSchemaError):
            append_entry(path, entry(anchor=""))
        assert len(load_bench(path)["entries"]) == 2

    def test_merge_metrics_reanchors_in_place(self, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        merge_metrics(path, "pr9", {"wall_s": 2.0},
                      date="2026-08-08")
        merge_metrics(path, "pr9", {"wall_s": 1.5, "boards": 8})
        doc = load_bench(path)
        assert len(doc["entries"]) == 1
        assert doc["entries"][0]["metrics"] \
            == {"wall_s": 1.5, "boards": 8}
        with pytest.raises(BenchSchemaError):
            merge_metrics(path, "pr9", {"wall_s": "slow"})

    def test_output_is_sorted_json(self, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        append_entry(path, entry())
        text = path.read_text()
        assert text == json.dumps(json.loads(text), sort_keys=True,
                                  indent=2) + "\n"


class TestDirections:
    @pytest.mark.parametrize("name, expected", [
        ("full_wall_s", "lower"),
        ("migration_pause_s", "lower"),
        ("defrag_admit_wall_ms", "lower"),
        ("a.b.p95_latency_s", "lower"),
        ("requests_per_s", "higher"),
        ("goodput_fraction", "higher"),
        ("rack_flap.guarded.goodput", "higher"),
        ("block_utilization", "higher"),
        ("boards", None),
        ("configs", None),
    ])
    def test_inference(self, name, expected):
        assert metric_direction(name) == expected

    def test_flatten(self):
        flat = flatten_metrics({"a": 1, "b": {"c": 2.5, "d": {"e": 3}}})
        assert flat == {"a": 1.0, "b.c": 2.5, "b.d.e": 3.0}


class TestGate:
    def test_within_band_passes(self):
        d = doc(entry(metrics={"wall_s": 1.0}),
                entry(metrics={"wall_s": 2.0}))
        assert trajectory_gate(d, band=4.0) == []

    def test_wall_regression_fails(self):
        d = doc(entry(metrics={"wall_s": 1.0}),
                entry(metrics={"wall_s": 10.0}))
        problems = trajectory_gate(d, band=4.0)
        assert len(problems) == 1
        assert "wall_s" in problems[0]

    def test_throughput_collapse_fails(self):
        d = doc(entry(metrics={"requests_per_s": 4000.0}),
                entry(metrics={"requests_per_s": 100.0}))
        assert trajectory_gate(d, band=4.0)

    def test_informational_metrics_never_gate(self):
        d = doc(entry(metrics={"boards": 4}),
                entry(metrics={"boards": 4096}))
        assert trajectory_gate(d, band=4.0) == []

    def test_different_anchors_never_compared(self):
        d = doc(entry(anchor="a", metrics={"wall_s": 0.001}),
                entry(anchor="b", metrics={"wall_s": 100.0}))
        assert trajectory_gate(d, band=4.0) == []

    def test_improvements_pass(self):
        d = doc(entry(metrics={"wall_s": 100.0}),
                entry(metrics={"wall_s": 0.1}))
        assert trajectory_gate(d, band=4.0) == []

    def test_band_must_exceed_one(self):
        with pytest.raises(ValueError):
            trajectory_gate(doc(), band=1.0)

    def test_committed_trajectories_pass_the_gate(self):
        for name in ("BENCH_perf.json", "BENCH_robustness.json"):
            assert trajectory_gate(load_bench(REPO_ROOT / name)) == []


class TestFormat:
    def test_one_row_per_entry(self):
        text = format_trajectory([doc(
            entry(metrics={"wall_s": 1.5, "requests_per_s": 10.0}),
            entry(anchor="other", fingerprint="ab" * 32))])
        assert "pr9-campaign" in text
        assert "other" in text
        assert "abababababab" in text
        assert "wall_s=1.5" in text
