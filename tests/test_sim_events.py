"""Tests for the event queue and time-weighted statistics."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.events import EventQueue, TimeWeightedValue


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(5.0, "b")
        q.push(1.0, "a")
        q.push(3.0, "c")
        assert [q.pop().kind for _ in range(3)] == ["a", "c", "b"]

    def test_stable_for_ties(self):
        q = EventQueue()
        q.push(1.0, "first")
        q.push(1.0, "second")
        assert q.pop().kind == "first"
        assert q.pop().kind == "second"

    def test_payload_carried(self):
        q = EventQueue()
        q.push(0.0, "k", payload={"x": 1})
        assert q.pop().payload == {"x": 1}

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, "bad")

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.push(0.0, "x")
        assert q and len(q) == 1

    def test_peek_time(self):
        q = EventQueue()
        q.push(7.0, "x")
        q.push(2.0, "y")
        assert q.peek_time() == 2.0

    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False), max_size=60))
    def test_pop_order_sorted(self, times):
        q = EventQueue()
        for t in times:
            q.push(t, "e")
        popped = [q.pop().time for _ in times]
        assert popped == sorted(popped)

    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False), max_size=60))
    def test_push_many_pops_like_sequential_pushes(self, times):
        """The bulk heapify load is indistinguishable from one push
        per event -- same (time, insertion order) pop sequence."""
        one_by_one = EventQueue()
        for i, t in enumerate(times):
            one_by_one.push(t, f"e{i}")
        bulk = EventQueue()
        bulk.push_many((t, f"e{i}", None)
                       for i, t in enumerate(times))
        for _ in times:
            a, b = one_by_one.pop(), bulk.pop()
            assert (a.time, a.kind) == (b.time, b.kind)
        assert not bulk

    def test_push_many_interleaves_with_push(self):
        q = EventQueue()
        q.push(2.0, "mid")
        q.push_many([(1.0, "early", None), (2.0, "mid-later", None),
                     (3.0, "late", None)])
        assert [q.pop().kind for _ in range(4)] \
            == ["early", "mid", "mid-later", "late"]

    def test_push_many_rejects_negative_time(self):
        with pytest.raises(ValueError):
            EventQueue().push_many([(0.0, "ok", None),
                                    (-1.0, "bad", None)])


class TestTimeWeightedValue:
    def test_constant_average(self):
        v = TimeWeightedValue(initial=3.0)
        assert v.average(0, 10) == pytest.approx(3.0)

    def test_step_average(self):
        v = TimeWeightedValue(initial=0.0)
        v.record(5.0, 10.0)
        assert v.average(0, 10) == pytest.approx(5.0)

    def test_average_sub_window(self):
        v = TimeWeightedValue(initial=0.0)
        v.record(5.0, 10.0)
        assert v.average(5, 10) == pytest.approx(10.0)
        assert v.average(0, 5) == pytest.approx(0.0)

    def test_value_at(self):
        v = TimeWeightedValue(initial=1.0)
        v.record(2.0, 7.0)
        assert v.value_at(1.9) == 1.0
        assert v.value_at(2.0) == 7.0

    def test_time_backwards_rejected(self):
        v = TimeWeightedValue()
        v.record(5.0, 1.0)
        with pytest.raises(ValueError):
            v.record(4.0, 2.0)

    def test_duplicate_value_coalesced(self):
        v = TimeWeightedValue(initial=2.0)
        v.record(1.0, 2.0)
        assert len(v._points) == 1

    def test_average_where_mask(self):
        value = TimeWeightedValue(initial=10.0)
        mask = TimeWeightedValue(initial=0.0)
        mask.record(4.0, 1.0)    # mask on from t=4
        value.record(4.0, 20.0)  # value jumps with it
        assert value.average_where(mask, 0, 8) == pytest.approx(20.0)

    def test_average_where_empty_mask(self):
        value = TimeWeightedValue(initial=5.0)
        mask = TimeWeightedValue(initial=0.0)
        assert value.average_where(mask, 0, 10) == 0.0

    def test_degenerate_window(self):
        v = TimeWeightedValue(initial=4.0)
        assert v.average(3, 3) == 4.0

    @given(st.lists(st.tuples(
        st.floats(min_value=0.01, max_value=100, allow_nan=False),
        st.floats(min_value=0, max_value=50, allow_nan=False)),
        min_size=1, max_size=30))
    def test_average_bounded_by_extremes(self, steps):
        v = TimeWeightedValue(initial=0.0)
        t = 0.0
        values = [0.0]
        for dt, value in steps:
            t += dt
            v.record(t, value)
            values.append(value)
        avg = v.average(0, t + 1)
        assert min(values) - 1e-9 <= avg <= max(values) + 1e-9
