"""Tests for the event queue and time-weighted statistics."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.sim.events import ArrayEventQueue, EventQueue, \
    TimeWeightedValue


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(5.0, "b")
        q.push(1.0, "a")
        q.push(3.0, "c")
        assert [q.pop().kind for _ in range(3)] == ["a", "c", "b"]

    def test_stable_for_ties(self):
        q = EventQueue()
        q.push(1.0, "first")
        q.push(1.0, "second")
        assert q.pop().kind == "first"
        assert q.pop().kind == "second"

    def test_payload_carried(self):
        q = EventQueue()
        q.push(0.0, "k", payload={"x": 1})
        assert q.pop().payload == {"x": 1}

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, "bad")

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.push(0.0, "x")
        assert q and len(q) == 1

    def test_peek_time(self):
        q = EventQueue()
        q.push(7.0, "x")
        q.push(2.0, "y")
        assert q.peek_time() == 2.0

    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False), max_size=60))
    def test_pop_order_sorted(self, times):
        q = EventQueue()
        for t in times:
            q.push(t, "e")
        popped = [q.pop().time for _ in times]
        assert popped == sorted(popped)

    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False), max_size=60))
    def test_push_many_pops_like_sequential_pushes(self, times):
        """The bulk heapify load is indistinguishable from one push
        per event -- same (time, insertion order) pop sequence."""
        one_by_one = EventQueue()
        for i, t in enumerate(times):
            one_by_one.push(t, f"e{i}")
        bulk = EventQueue()
        bulk.push_many((t, f"e{i}", None)
                       for i, t in enumerate(times))
        for _ in times:
            a, b = one_by_one.pop(), bulk.pop()
            assert (a.time, a.kind) == (b.time, b.kind)
        assert not bulk

    def test_push_many_interleaves_with_push(self):
        q = EventQueue()
        q.push(2.0, "mid")
        q.push_many([(1.0, "early", None), (2.0, "mid-later", None),
                     (3.0, "late", None)])
        assert [q.pop().kind for _ in range(4)] \
            == ["early", "mid", "mid-later", "late"]

    def test_push_many_rejects_negative_time(self):
        with pytest.raises(ValueError):
            EventQueue().push_many([(0.0, "ok", None),
                                    (-1.0, "bad", None)])


#: tiny time domain -> heavy timestamp ties, the regime where a pop
#: order bug between the engines would hide
_tie_times = st.lists(st.integers(min_value=0, max_value=5),
                      max_size=50)
_kind_flags = st.lists(st.booleans(), max_size=50)


def _static_schedule(times, arrival_flags):
    """(time, kind, payload) triples with unique payloads."""
    return [(float(t), "arrival" if flag else "fault", i)
            for i, (t, flag) in enumerate(
                zip(times, arrival_flags + [True] * len(times)))]


class TestArrayEventQueue:
    """The flat-array engine against the heapq oracle."""

    def test_static_beats_dynamic_on_time_tie(self):
        q = ArrayEventQueue()
        q.push_many([(3.0, "arrival", "static")])
        q.push(3.0, "completion", "dynamic")
        assert q.pop3() == (3.0, "arrival", "static")
        assert q.pop3() == (3.0, "completion", "dynamic")

    def test_push_many_after_seal_falls_back_to_dynamic(self):
        q = ArrayEventQueue()
        q.push_many([(1.0, "arrival", "a")])
        q.push(5.0, "completion", "c")  # seals
        q.push_many([(2.0, "fault", "f")])
        assert [q.pop3()[2] for _ in range(3)] == ["a", "f", "c"]

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            ArrayEventQueue().pop3()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            ArrayEventQueue().push_many([(-1.0, "arrival", None)])
        q = ArrayEventQueue()
        with pytest.raises(ValueError):
            q.push(-0.5, "completion")

    def test_len_bool_peek_unsealed_and_sealed(self):
        q = ArrayEventQueue()
        assert not q and len(q) == 0
        q.push_many([(2.0, "arrival", "a"), (1.0, "arrival", "b")])
        assert q and len(q) == 2           # still staged
        assert q.peek_time() == 1.0        # seals
        q.push(0.5, "completion", "c")
        assert len(q) == 3
        assert q.peek_time() == 0.5

    def test_arrival_run_stops_at_fault(self):
        q = ArrayEventQueue()
        q.push_many([(1.0, "arrival", 0), (1.0, "arrival", 1),
                     (1.0, "fault", 2), (2.0, "arrival", 3)])
        assert q.pop_arrival_run() == [0, 1]
        assert q.pop_arrival_run() == []
        assert q.pop3()[1] == "fault"
        assert q.pop_arrival_run() == [3]

    def test_arrival_run_clipped_by_dynamic_head_with_tie_kept(self):
        q = ArrayEventQueue()
        q.push_many([(1.0, "arrival", 0), (2.0, "arrival", 1),
                     (3.0, "arrival", 2)])
        q.push(2.0, "completion", "c")
        # the t=2.0 arrival ties the dynamic head and still pops first,
        # so it belongs to the run; the t=3.0 arrival does not
        assert q.pop_arrival_run() == [0, 1]
        assert q.pop3() == (2.0, "completion", "c")
        assert q.pop_arrival_run() == [2]

    @given(_tie_times, _kind_flags, st.integers(0, 2**16))
    def test_lockstep_pop_order_matches_oracle(self, times, flags,
                                               seed):
        """Interleaved static load + dynamic pushes: every pop3 equals
        the oracle's, under heavy timestamp ties."""
        static = _static_schedule(times, flags)
        rng = random.Random(seed)
        oracle, array = EventQueue(), ArrayEventQueue()
        oracle.push_many(static)
        array.push_many(static)
        popped = 0
        while oracle or array:
            assert bool(array) == bool(oracle)
            assert len(array) == len(oracle)
            got, want = array.pop3(), oracle.pop3()
            assert got == want
            popped += 1
            if rng.random() < 0.3 and popped < 120:
                t = got[0] + rng.choice([0.0, 0.0, 1.0, 2.5])
                payload = f"d{popped}"
                kind = rng.choice(["completion", "fault"])
                array.push(t, kind, payload)
                oracle.push(t, kind, payload)

    @given(_tie_times, _kind_flags, st.integers(0, 2**16))
    def test_cohort_runs_reconstruct_oracle_order(self, times, flags,
                                                  seed):
        """pop_arrival_run batches are exactly the maximal arrival
        prefixes of the oracle's pop sequence."""
        static = _static_schedule(times, flags)
        rng = random.Random(seed ^ 0x5eed)
        oracle, array = EventQueue(), ArrayEventQueue()
        oracle.push_many(static)
        array.push_many(static)
        popped = 0
        while oracle or array:
            run = array.pop_arrival_run()
            if run:
                for payload in run:
                    t, kind, got = oracle.pop3()
                    assert kind == "arrival"
                    assert got == payload
                popped += len(run)
                continue
            assert bool(array) == bool(oracle)
            if not array:
                break
            got, want = array.pop3(), oracle.pop3()
            assert got == want
            # maximality: a popped-singly event is never a static
            # arrival the batch should have taken (dynamic events are
            # never kind "arrival" in the experiment loop)
            assert got[1] != "arrival" or isinstance(got[2], str)
            popped += 1
            if rng.random() < 0.3 and popped < 120:
                t = got[0] + rng.choice([0.0, 1.0])
                array.push(t, "completion", f"d{popped}")
                oracle.push(t, "completion", f"d{popped}")


class TestTimeWeightedValue:
    def test_constant_average(self):
        v = TimeWeightedValue(initial=3.0)
        assert v.average(0, 10) == pytest.approx(3.0)

    def test_step_average(self):
        v = TimeWeightedValue(initial=0.0)
        v.record(5.0, 10.0)
        assert v.average(0, 10) == pytest.approx(5.0)

    def test_average_sub_window(self):
        v = TimeWeightedValue(initial=0.0)
        v.record(5.0, 10.0)
        assert v.average(5, 10) == pytest.approx(10.0)
        assert v.average(0, 5) == pytest.approx(0.0)

    def test_value_at(self):
        v = TimeWeightedValue(initial=1.0)
        v.record(2.0, 7.0)
        assert v.value_at(1.9) == 1.0
        assert v.value_at(2.0) == 7.0

    def test_time_backwards_rejected(self):
        v = TimeWeightedValue()
        v.record(5.0, 1.0)
        with pytest.raises(ValueError):
            v.record(4.0, 2.0)

    def test_duplicate_value_coalesced(self):
        v = TimeWeightedValue(initial=2.0)
        v.record(1.0, 2.0)
        assert len(v._points) == 1

    def test_average_where_mask(self):
        value = TimeWeightedValue(initial=10.0)
        mask = TimeWeightedValue(initial=0.0)
        mask.record(4.0, 1.0)    # mask on from t=4
        value.record(4.0, 20.0)  # value jumps with it
        assert value.average_where(mask, 0, 8) == pytest.approx(20.0)

    def test_average_where_empty_mask(self):
        value = TimeWeightedValue(initial=5.0)
        mask = TimeWeightedValue(initial=0.0)
        assert value.average_where(mask, 0, 10) == 0.0

    def test_degenerate_window(self):
        v = TimeWeightedValue(initial=4.0)
        assert v.average(3, 3) == 4.0

    @given(st.lists(st.tuples(
        st.floats(min_value=0.01, max_value=100, allow_nan=False),
        st.floats(min_value=0, max_value=50, allow_nan=False)),
        min_size=1, max_size=30))
    def test_average_bounded_by_extremes(self, steps):
        v = TimeWeightedValue(initial=0.0)
        t = 0.0
        values = [0.0]
        for dt, value in steps:
            t += dt
            v.record(t, value)
            values.append(value)
        avg = v.average(0, t + 1)
        assert min(values) - 1e-9 <= avg <= max(values) + 1e-9
