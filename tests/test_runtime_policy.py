"""Tests for the allocation policies (Section 3.4)."""

import pytest

from repro.cluster.network import RingNetwork
from repro.runtime.policy import (
    CommunicationAwarePolicy,
    FirstFitPolicy,
    SpreadPolicy,
    split_virtual_blocks,
)


@pytest.fixture()
def ring():
    return RingNetwork(num_nodes=4)


def free(*counts):
    """free_by_board from per-board free-block counts."""
    return {board: list(range(count))
            for board, count in enumerate(counts)}


class TestCommunicationAwarePolicy:
    def test_single_board_preferred(self, ring, compiled_large):
        # board 2 fits exactly; boards 0+1 would also fit combined
        placement = CommunicationAwarePolicy().allocate(
            compiled_large, free(6, 6, compiled_large.num_blocks, 0),
            ring)
        assert placement.boards == [2]

    def test_best_fit_among_single_boards(self, ring, compiled_medium):
        n = compiled_medium.num_blocks
        placement = CommunicationAwarePolicy().allocate(
            compiled_medium, free(15, n, 15, 15), ring)
        assert placement.boards == [1]  # tightest fit

    def test_splits_when_no_single_board_fits(self, ring,
                                              compiled_large):
        n = compiled_large.num_blocks
        a, b = n - 3, 3
        placement = CommunicationAwarePolicy().allocate(
            compiled_large, free(a, b, 0, 0), ring)
        assert placement is not None
        assert placement.spans_boards
        assert len(placement.addresses) == n

    def test_prefers_adjacent_boards_when_splitting(self, ring,
                                                    compiled_large):
        n = compiled_large.num_blocks
        half = n // 2 + 1
        # boards 0 and 1 are adjacent; 0 and 2 are across the ring
        placement = CommunicationAwarePolicy().allocate(
            compiled_large, free(half, half, half, 0), ring)
        assert placement.boards in ([0, 1], [1, 2], [0, 3])

    def test_none_when_insufficient(self, ring, compiled_large):
        assert CommunicationAwarePolicy().allocate(
            compiled_large, free(1, 1, 1, 1), ring) is None

    def test_no_useless_board_in_subset(self, ring, compiled_large):
        n = compiled_large.num_blocks
        placement = CommunicationAwarePolicy().allocate(
            compiled_large, free(n - 1, 1, 0, 0), ring)
        assert placement.num_boards == 2
        assert all(len(placement.blocks_on(b)) > 0
                   for b in placement.boards)

    def test_placement_is_valid(self, ring, compiled_large):
        placement = CommunicationAwarePolicy().allocate(
            compiled_large, free(5, 5, 5, 5), ring)
        placement.validate(compiled_large.num_blocks)

    def test_heavy_flows_stay_on_one_board(self, ring, compiled_large):
        """Virtual blocks joined by the heaviest channels co-locate."""
        n = compiled_large.num_blocks
        placement = CommunicationAwarePolicy().allocate(
            compiled_large, free(n - 2, 2, 0, 0), ring)
        cross = sum(
            bits for (s, d), bits in compiled_large.flows.items()
            if placement.board_of(s) != placement.board_of(d))
        assert cross <= 0.5 * sum(compiled_large.flows.values())


class TestSplitVirtualBlocks:
    def test_quota_respected(self, compiled_large):
        n = compiled_large.num_blocks
        assignment = split_virtual_blocks(
            compiled_large, [(0, n - 2), (1, 2)])
        counts = {0: 0, 1: 0}
        for board in assignment.values():
            counts[board] += 1
        assert counts == {0: n - 2, 1: 2}

    def test_insufficient_quota_rejected(self, compiled_large):
        with pytest.raises(ValueError):
            split_virtual_blocks(compiled_large, [(0, 1)])

    def test_all_blocks_assigned(self, compiled_large):
        n = compiled_large.num_blocks
        assignment = split_virtual_blocks(compiled_large, [(0, n)])
        assert set(assignment) == set(range(n))


class TestAdjacencyMemoization:
    def test_repeat_splits_build_adjacency_once(self, compiled_large):
        from repro.runtime import policy as policy_mod
        policy_mod._clear_split_caches()
        n = compiled_large.num_blocks
        quotas = [(0, n - 2), (1, 2)]
        before = policy_mod._adjacency_builds
        first = split_virtual_blocks(compiled_large, quotas)
        after_first = policy_mod._adjacency_builds
        second = split_virtual_blocks(compiled_large, quotas)
        third = split_virtual_blocks(compiled_large, [(2, n)])
        # counter-exact: one cold build, then pure cache reuse --
        # and the memoized path is byte-equivalent to the cold one
        assert after_first == before + 1
        assert policy_mod._adjacency_builds == after_first
        assert first == second
        assert set(third) == set(range(n))

    def test_repeat_splits_run_the_kernel_once(self, compiled_large):
        # the shape memo: same app + same capacity sequence -> one
        # cold kernel run, regardless of which boards carry the quotas
        from repro.runtime import policy as policy_mod
        policy_mod._clear_split_caches()
        n = compiled_large.num_blocks
        before = policy_mod._split_kernel_runs
        first = split_virtual_blocks(compiled_large, [(0, n - 2),
                                                      (1, 2)])
        second = split_virtual_blocks(compiled_large, [(3, n - 2),
                                                       (2, 2)])
        assert policy_mod._split_kernel_runs == before + 1
        # same grouping, relabeled onto the new boards
        relabel = {0: 3, 1: 2}
        assert second == {vb: relabel[b] for vb, b in first.items()}

    def test_distinct_instances_build_separately(self, compiled_large):
        from repro.compiler.bitstream import CompiledApp
        from repro.runtime import policy as policy_mod
        policy_mod._clear_split_caches()
        clone = CompiledApp.from_dict(compiled_large.to_dict())
        n = compiled_large.num_blocks
        quotas = [(0, n - 2), (1, 2)]
        before = policy_mod._adjacency_builds
        original = split_virtual_blocks(compiled_large, quotas)
        cloned = split_virtual_blocks(clone, quotas)
        assert policy_mod._adjacency_builds == before + 2
        # equal artifacts split identically regardless of which
        # instance seeded the cache
        assert original == cloned

    def test_cache_is_bounded(self, compiled_small):
        from repro.compiler.bitstream import CompiledApp
        from repro.runtime import policy as policy_mod
        policy_mod._clear_split_caches()
        n = compiled_small.num_blocks
        keep_alive = []
        for _ in range(policy_mod._ADJACENCY_CACHE_MAX + 8):
            app = CompiledApp.from_dict(compiled_small.to_dict())
            keep_alive.append(app)
            split_virtual_blocks(app, [(0, n - 1), (1, 1)],
                                 kernel="scalar")
        assert len(policy_mod._ADJACENCY_CACHE) \
            == policy_mod._ADJACENCY_CACHE_MAX

    def test_split_caches_are_bounded(self, compiled_small):
        from repro.compiler.bitstream import CompiledApp
        from repro.runtime import policy as policy_mod
        policy_mod._clear_split_caches()
        n = compiled_small.num_blocks
        keep_alive = []
        for _ in range(policy_mod._SPLIT_ARRAYS_CACHE_MAX + 8):
            app = CompiledApp.from_dict(compiled_small.to_dict())
            keep_alive.append(app)
            split_virtual_blocks(app, [(0, n - 1), (1, 1)])
        assert len(policy_mod._SPLIT_ARRAYS_CACHE) \
            == policy_mod._SPLIT_ARRAYS_CACHE_MAX
        app = keep_alive[0]
        for caps in range(policy_mod._SPLIT_RESULT_CACHE_MAX + 8):
            split_virtual_blocks(
                app, [(0, n - 1), (1, 1 + caps)])
        assert len(policy_mod._SPLIT_RESULT_CACHE) \
            == policy_mod._SPLIT_RESULT_CACHE_MAX


class TestAblationPolicies:
    def test_first_fit_takes_lowest_addresses(self, ring,
                                              compiled_medium):
        placement = FirstFitPolicy().allocate(
            compiled_medium, free(15, 15, 15, 15), ring)
        assert placement.boards == [0]

    def test_first_fit_spans_when_fragmented(self, ring,
                                             compiled_medium):
        n = compiled_medium.num_blocks
        placement = FirstFitPolicy().allocate(
            compiled_medium, free(1, 1, 1, n), ring)
        assert placement.spans_boards

    def test_first_fit_none_when_insufficient(self, ring,
                                              compiled_large):
        assert FirstFitPolicy().allocate(
            compiled_large, free(1, 0, 0, 0), ring) is None

    def test_spread_uses_many_boards(self, ring, compiled_large):
        placement = SpreadPolicy().allocate(
            compiled_large, free(15, 15, 15, 15), ring)
        assert placement.num_boards \
            == min(4, compiled_large.num_blocks)

    def test_spread_none_when_insufficient(self, ring, compiled_large):
        assert SpreadPolicy().allocate(
            compiled_large, free(2, 2, 2, 2), ring) is None

    def test_spread_placement_valid(self, ring, compiled_large):
        placement = SpreadPolicy().allocate(
            compiled_large, free(15, 15, 15, 15), ring)
        placement.validate(compiled_large.num_blocks)
