"""TimelineAggregator: streaming health series over trace events."""

import json

import pytest

from repro.obs.timeline import BUCKET_FIELDS, TimelineAggregator
from repro.obs.tracer import Tracer


def make_timeline(interval=10.0, capacity=40, boards=4):
    return TimelineAggregator(interval_s=interval,
                              capacity_blocks=capacity,
                              num_boards=boards,
                              board_capacity=capacity // boards)


def deploy_event(timeline, t, request, blocks_by_board, tenant="a",
                 spans=None):
    blocks = sum(n for _, n in blocks_by_board)
    timeline.on_record("event", "ctrl.deploy", t, None, {
        "request": request, "blocks": blocks, "tenant": tenant,
        "blocks_by_board": blocks_by_board,
        "spans": len(blocks_by_board) > 1 if spans is None else spans})


class TestBucketing:
    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            TimelineAggregator(interval_s=0.0)

    def test_buckets_close_at_fixed_boundaries(self):
        tl = make_timeline()
        tl.on_record("event", "sim.arrival", 3.0, None, {"request": 1})
        assert tl.buckets == []  # bucket 0 still open
        tl.on_record("event", "sim.arrival", 25.0, None, {"request": 2})
        # events at t=25 close buckets [0,10) and [10,20)
        assert [b["t"] for b in tl.buckets] == [10.0, 20.0]
        assert tl.buckets[0]["queue_depth"] == 1
        assert tl.buckets[1]["queue_depth"] == 1

    def test_sample_is_state_at_bucket_end(self):
        tl = make_timeline()
        tl.on_record("event", "sim.arrival", 1.0, None, {"request": 1})
        deploy_event(tl, 2.0, 1, [[0, 4]])
        tl.on_record("event", "sim.deploy", 2.0, None, {"request": 1})
        tl.finish(2.0)
        (bucket,) = tl.buckets
        assert bucket["queue_depth"] == 0       # deployed within bucket
        assert bucket["allocated_blocks"] == 4
        assert bucket["utilization"] == pytest.approx(4 / 40)
        assert bucket["arrivals"] == 1
        assert bucket["deploys"] == 1

    def test_rate_counters_reset_per_bucket(self):
        tl = make_timeline()
        tl.on_record("event", "sim.arrival", 1.0, None, {"request": 1})
        tl.finish(25.0)
        assert [b["arrivals"] for b in tl.buckets] == [1, 0, 0]

    def test_finish_is_idempotent_and_closes_tail(self):
        tl = make_timeline()
        tl.finish(35.0)
        assert len(tl.buckets) == 4  # [0,10) .. [30,40)
        tl.finish(95.0)
        assert len(tl.buckets) == 4
        tl.on_record("event", "sim.arrival", 99.0, None, {})
        assert len(tl.buckets) == 4  # finished: intake ignored

    def test_boundary_events_bucket_robustly(self):
        """PR 7 (satellite): ``int(t // interval)`` misbuckets times
        one ulp below a boundary -- ``0.3 // 0.1 == 2.0``.  An event at
        a float-dirty boundary must land in the same bucket as one at
        the exact boundary."""
        for k in (3, 7, 49):
            exact = TimelineAggregator(interval_s=0.1,
                                       capacity_blocks=40)
            dirty = TimelineAggregator(interval_s=0.1,
                                       capacity_blocks=40)
            # same instant, two float spellings: 0.1*k accumulates
            # representation error relative to k/10 computed once
            t_dirty = 0.1 * k
            t_exact = k / 10
            exact.on_record("event", "sim.arrival", t_exact, None, {})
            dirty.on_record("event", "sim.arrival", t_dirty, None, {})
            assert len(exact.buckets) == len(dirty.buckets) == k, \
                f"k={k}: {len(exact.buckets)} vs {len(dirty.buckets)}"

    def test_bucket_of_snaps_only_near_boundaries(self):
        tl = TimelineAggregator(interval_s=10.0, capacity_blocks=40)
        assert tl._bucket_of(0.0) == 0
        assert tl._bucket_of(9.999) == 0       # genuinely inside
        assert tl._bucket_of(10.0) == 1        # exact boundary
        assert tl._bucket_of(10.0 - 1e-12) == 1  # one ulp shy: snaps
        assert tl._bucket_of(10.0 + 1e-12) == 1
        assert tl._bucket_of(15.0) == 1
        # mid-interval times never snap upward
        assert tl._bucket_of(14.999999) == 1

    def test_dirty_boundary_closes_match_exact(self):
        """A stream whose timestamps are accumulated floats produces
        the same bucket count as the analytically exact stream."""
        interval = 0.1
        tl = TimelineAggregator(interval_s=interval,
                                capacity_blocks=40)
        t, n = 0.0, 200
        for _ in range(n):
            t += interval  # accumulates error vs i * interval
            tl.on_record("event", "sim.arrival", t, None, {})
        tl.finish(t)
        # every event sat exactly on a boundary, so each opened a new
        # bucket; finish closes the one the last event opened
        assert len(tl.buckets) == n + 1


class TestStateTracking:
    def test_occupancy_and_release(self):
        tl = make_timeline()
        deploy_event(tl, 1.0, 1, [[0, 3], [1, 2]], tenant="alice")
        deploy_event(tl, 2.0, 2, [[2, 4]], tenant="bob")
        tl.on_record("event", "ctrl.release", 5.0, None, {"request": 1})
        tl.finish(5.0)
        (bucket,) = tl.buckets
        assert bucket["allocated_blocks"] == 4
        assert bucket["board_occupancy"] == [0, 0, 4, 0]
        assert bucket["active_tenants"] == 1
        assert bucket["max_tenant_share"] == pytest.approx(4 / 40)

    def test_ring_flows_from_spanning_deployments(self):
        tl = make_timeline()
        deploy_event(tl, 1.0, 1, [[0, 2], [1, 2]])   # spans 0-1
        tl.finish(1.0)
        assert tl.buckets[0]["ring_max_flows"] == 1
        tl2 = make_timeline()
        deploy_event(tl2, 1.0, 1, [[0, 4]])          # single board
        tl2.finish(1.0)
        assert tl2.buckets[0]["ring_max_flows"] == 0

    def test_failed_boards_and_fragmentation(self):
        tl = make_timeline()
        tl.on_record("event", "ctrl.board_fail", 1.0, None, {"board": 1})
        tl.on_record("event", "ctrl.board_repair", 11.0, None,
                     {"board": 1})
        tl.finish(11.0)
        assert tl.buckets[0]["failed_boards"] == 1
        # 3 healthy boards, 10 free each -> evenly shredded
        assert tl.buckets[0]["fragmentation"] == pytest.approx(2 / 3)
        assert tl.buckets[1]["failed_boards"] == 0

    def test_evict_requeued_reenters_queue(self):
        tl = make_timeline()
        tl.on_record("event", "sim.arrival", 1.0, None, {"request": 1})
        tl.on_record("event", "sim.deploy", 2.0, None, {"request": 1})
        deploy_event(tl, 2.0, 1, [[0, 2]])
        tl.on_record("event", "ctrl.evict", 3.0, None, {"request": 1})
        tl.on_record("event", "sim.evict", 3.0, None,
                     {"request": 1, "reason": "requeued"})
        tl.finish(3.0)
        assert tl.buckets[0]["queue_depth"] == 1
        assert tl.buckets[0]["allocated_blocks"] == 0

    def test_spans_and_slo_events_ignored(self):
        tl = make_timeline()
        tl.on_record("span", "compile.pnr", 1.0, 2.0, {})
        tl.on_record("event", "slo.violation", 50.0, None, {"rule": "x"})
        assert tl.buckets == []  # neither advanced the bucket clock


class TestConfigure:
    def test_bare_aggregator_requires_configure(self):
        tl = TimelineAggregator(interval_s=5.0)
        assert not tl.configured
        tl.configure(40, num_boards=4)
        assert tl.configured
        assert tl.board_capacity == 10

    def test_reconfigure_running_timeline_rejected(self):
        tl = make_timeline()
        deploy_event(tl, 1.0, 1, [[0, 1]])
        with pytest.raises(RuntimeError):
            tl.configure(80)

    def test_listener_must_be_callable(self):
        tl = make_timeline()
        with pytest.raises(TypeError):
            tl.add_listener("not-callable")

    def test_listener_fires_per_bucket(self):
        tl = make_timeline()
        seen = []
        tl.add_listener(lambda t, sample: seen.append(t))
        tl.finish(25.0)
        assert seen == [10.0, 20.0, 30.0]


class TestExport:
    def test_json_is_compact_sorted_and_stable(self):
        tl = make_timeline()
        deploy_event(tl, 1.0, 1, [[0, 2]])
        tl.finish(1.0)
        text = tl.to_json()
        doc = json.loads(text)
        assert doc["interval_s"] == 10.0
        assert json.dumps(doc, sort_keys=True,
                          separators=(",", ":")) == text

    def test_csv_shape(self):
        tl = make_timeline()
        deploy_event(tl, 1.0, 1, [[1, 3]])
        tl.finish(1.0)
        lines = tl.to_csv().splitlines()
        header = lines[0].split(",")
        assert header[:len(BUCKET_FIELDS)] == list(BUCKET_FIELDS)
        assert header[len(BUCKET_FIELDS):] == [
            "board0", "board1", "board2", "board3"]
        row = lines[1].split(",")
        assert row[header.index("board1")] == "3"

    def test_dump_selects_format_by_suffix(self, tmp_path):
        tl = make_timeline()
        tl.finish(5.0)
        n = tl.dump(tmp_path / "tl.json")
        assert n == 1
        assert json.loads((tmp_path / "tl.json").read_text())
        tl.dump(tmp_path / "tl.csv")
        assert (tmp_path / "tl.csv").read_text().startswith("t,")

    def test_series_accessor(self):
        tl = make_timeline()
        tl.on_record("event", "sim.arrival", 1.0, None, {})
        tl.finish(15.0)
        assert tl.series("arrivals") == [1, 0]


class TestTracerIntegration:
    def test_sink_receives_and_aggregates_live_events(self):
        tracer = Tracer()
        tl = make_timeline()
        tracer.add_sink(tl.on_record)
        tracer.event("sim.arrival", t=1.0, request=1)
        tracer.event("ctrl.deploy", t=2.0, request=1, blocks=2,
                     tenant="a", blocks_by_board=[[0, 2]], spans=False)
        tracer.event("sim.deploy", t=2.0, request=1)
        tracer.event("sim.complete", t=12.0, request=1)
        tl.finish(12.0)
        assert tl.buckets[0]["deploys"] == 1
        assert tl.buckets[1]["completions"] == 1

    def test_non_retaining_tracer_still_feeds_sinks(self):
        tracer = Tracer(retain=False)
        tl = make_timeline()
        tracer.add_sink(tl.on_record)
        tracer.event("sim.arrival", t=1.0, request=1)
        assert len(tracer) == 0
        tl.finish(1.0)
        assert tl.buckets[0]["arrivals"] == 1

    def test_disabled_tracer_feeds_nothing(self):
        tracer = Tracer(enabled=False)
        tl = make_timeline()
        tracer.add_sink(tl.on_record)
        tracer.event("sim.arrival", t=1.0, request=1)
        tl.finish(1.0)
        assert tl.buckets[0]["arrivals"] == 0

    def test_sink_must_be_callable(self):
        with pytest.raises(TypeError):
            Tracer().add_sink(42)


class TestSnapshotRestore:
    def test_snapshot_is_jsonable_and_restores_midstream(self):
        tl = make_timeline()
        deploy_event(tl, 1.0, 1, [[0, 2], [1, 1]], tenant="alice")
        tl.on_record("event", "sim.arrival", 12.0, None, {})
        state = json.loads(json.dumps(tl.snapshot()))
        restored = TimelineAggregator.restore(state)
        for t in (tl, restored):
            t.on_record("event", "ctrl.release", 14.0, None,
                        {"request": 1})
            t.finish(14.0)
        assert restored.to_json() == tl.to_json()
