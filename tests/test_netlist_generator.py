"""Tests for the synthetic netlist builder."""

import pytest

from repro.fabric.resources import ResourceVector
from repro.netlist.dataflow import DataflowGraph
from repro.netlist.generator import NetlistBuilder


def res(lut=1000, dff=2000, dsp=4, bram=0.2):
    return ResourceVector(lut=lut, dff=dff, dsp=dsp, bram_mb=bram)


class TestModules:
    def test_module_resources_preserved(self):
        b = NetlistBuilder("t", seed=1, macro_lut=100)
        b.add_module("m", res(lut=1000))
        usage = b.build().resource_usage()
        assert usage.lut == pytest.approx(1000)
        assert usage.dff == pytest.approx(2000)

    def test_macro_count_scales_with_granularity(self):
        fine = NetlistBuilder("f", macro_lut=50)
        fine.add_module("m", res())
        coarse = NetlistBuilder("c", macro_lut=500)
        coarse.add_module("m", res())
        assert fine.netlist.num_primitives \
            > coarse.netlist.num_primitives

    def test_macro_lut_one_allowed(self):
        b = NetlistBuilder("t", macro_lut=1)
        b.add_module("m", ResourceVector(lut=10, dff=20))
        assert b.netlist.num_primitives == 10

    def test_macro_count_bounded_by_bram(self):
        """A BRAM-heavy module splits into BRAM-capped macros, so no
        single macro can exceed a physical block's BRAM (regression:
        hypothesis-found unpartitionable netlist)."""
        b = NetlistBuilder("t", macro_lut=512)
        handle = b.add_module("weights",
                              ResourceVector(lut=400, dff=800,
                                             bram_mb=5.2))
        per_macro = [b.netlist.primitives[u].resources.bram_mb
                     for u in handle.macro_uids]
        assert max(per_macro) <= 0.109
        assert sum(per_macro) == pytest.approx(5.2)

    def test_macro_count_bounded_by_dsp(self):
        b = NetlistBuilder("t", macro_lut=512)
        handle = b.add_module("pes",
                              ResourceVector(lut=100, dff=200, dsp=64))
        per_macro = [b.netlist.primitives[u].resources.dsp
                     for u in handle.macro_uids]
        assert max(per_macro) <= 4.0

    def test_invalid_macro_lut(self):
        with pytest.raises(ValueError):
            NetlistBuilder("t", macro_lut=0)

    def test_duplicate_module_rejected(self):
        b = NetlistBuilder("t")
        b.add_module("m", res())
        with pytest.raises(ValueError, match="duplicate"):
            b.add_module("m", res())

    def test_feedback_creates_cycle(self):
        b = NetlistBuilder("t", macro_lut=100)
        b.add_module("acc", res(), feedback=True)
        assert not DataflowGraph(b.build()).is_acyclic()

    def test_no_feedback_module_is_connected_chain(self):
        b = NetlistBuilder("t", macro_lut=100, local_fanout=0)
        h = b.add_module("m", res())
        nl = b.build()
        # backbone nets exist between consecutive macros
        assert nl.num_nets >= len(h.macro_uids) - 1

    def test_determinism(self):
        def make():
            b = NetlistBuilder("t", seed=7, macro_lut=64)
            b.add_module("a", res())
            b.add_module("z", res(lut=500))
            b.connect("a", "z", width_bits=32, links=2)
            return b.build()
        n1, n2 = make(), make()
        assert n1.num_nets == n2.num_nets
        assert [n.width_bits for n in n1.nets.values()] \
            == [n.width_bits for n in n2.nets.values()]


class TestConnections:
    def test_connect_adds_named_nets(self):
        b = NetlistBuilder("t", macro_lut=100)
        b.add_module("a", res())
        b.add_module("z", res())
        before = b.netlist.num_nets
        b.connect("a", "z", width_bits=128, links=3)
        added = [n for n in b.netlist.nets.values()
                 if n.uid >= before]
        assert len(added) == 3
        assert all(n.width_bits == 128 for n in added)
        assert all(n.name == "a->z" for n in added)

    def test_streams_create_ports(self):
        b = NetlistBuilder("t", macro_lut=100)
        b.add_module("m", res())
        b.add_input_stream("in0", "m", width_bits=64)
        b.add_output_stream("out0", "m", width_bits=32)
        nl = b.build()
        assert len(nl.input_ports()) == 1
        assert len(nl.output_ports()) == 1

    def test_build_validates(self):
        b = NetlistBuilder("t", macro_lut=100)
        b.add_module("m", res())
        nl = b.build()
        nl.validate()
