"""Tests for the resource and bitstream databases, and runtime types."""

import pytest

from repro.runtime.bitstream_db import BitstreamDB
from repro.runtime.resource_db import BlockState, ResourceDB
from repro.runtime.types import Placement


class TestResourceDB:
    @pytest.fixture()
    def db(self, cluster):
        return ResourceDB(cluster)

    def test_all_free_initially(self, db):
        assert db.total_blocks == 60
        assert len(db.free_blocks()) == 60
        assert db.utilization() == 0.0

    def test_allocate_marks_state_and_owner(self, db):
        db.allocate(7, [(0, 0), (0, 1)])
        assert db.state_of((0, 0)) is BlockState.ALLOCATED
        assert db.owner_of((0, 1)) == 7
        assert db.allocated_count() == 2

    def test_double_allocation_rejected_atomically(self, db):
        db.allocate(1, [(0, 0)])
        with pytest.raises(RuntimeError, match="already allocated"):
            db.allocate(2, [(0, 1), (0, 0)])
        # the partial request must not have claimed (0, 1)
        assert db.state_of((0, 1)) is BlockState.FREE

    def test_release_returns_blocks(self, db):
        db.allocate(3, [(1, 4), (2, 5)])
        freed = db.release(3)
        assert sorted(freed) == [(1, 4), (2, 5)]
        assert db.allocated_count() == 0

    def test_release_unknown_request(self, db):
        with pytest.raises(RuntimeError, match="owns no blocks"):
            db.release(42)

    def test_free_by_board_shape(self, db):
        db.allocate(1, [(0, i) for i in range(15)])
        free = db.free_by_board()
        assert free[0] == []
        assert len(free[1]) == 15

    def test_blocks_of(self, db):
        db.allocate(9, [(3, 14)])
        assert db.blocks_of(9) == [(3, 14)]

    def test_utilization_fraction(self, db):
        db.allocate(1, [(0, i) for i in range(15)])
        assert db.utilization() == pytest.approx(0.25)


class TestBitstreamDB:
    def test_register_and_lookup(self, cluster, compiled_small):
        db = BitstreamDB(cluster.footprint)
        db.register(compiled_small)
        assert compiled_small.name in db
        assert db.lookup(compiled_small.name) is compiled_small
        assert db.names() == [compiled_small.name]

    def test_wrong_footprint_rejected(self, compiled_small):
        db = BitstreamDB("some-other-footprint")
        with pytest.raises(ValueError, match="recompile required"):
            db.register(compiled_small)

    def test_missing_lookup_message(self, cluster):
        db = BitstreamDB(cluster.footprint)
        with pytest.raises(KeyError, match="offline compilation"):
            db.lookup("ghost-app")

    def test_len(self, cluster, compiled_small, compiled_medium):
        db = BitstreamDB(cluster.footprint)
        db.register(compiled_small)
        db.register(compiled_medium)
        assert len(db) == 2

    def test_identical_reregistration_is_noop(self, cluster,
                                              compiled_small):
        db = BitstreamDB(cluster.footprint)
        db.register(compiled_small)
        db.register(compiled_small)  # same object: free no-op
        assert db.lookup(compiled_small.name) is compiled_small
        assert len(db) == 1

    def test_identical_bytes_reregistration_is_noop(self, cluster,
                                                    compiled_small):
        """A cache/persistence reload of the same artifact is fine."""
        from repro.compiler.bitstream import CompiledApp
        db = BitstreamDB(cluster.footprint)
        db.register(compiled_small)
        clone = CompiledApp.from_dict(compiled_small.to_dict())
        db.register(clone)
        # the original registration wins (no silent swap under live
        # deployments)
        assert db.lookup(compiled_small.name) is compiled_small

    def test_conflicting_registration_raises(self, cluster,
                                             compiled_small):
        import dataclasses
        db = BitstreamDB(cluster.footprint)
        db.register(compiled_small)
        conflicting = dataclasses.replace(
            compiled_small, fmax_mhz=compiled_small.fmax_mhz + 1.0)
        with pytest.raises(ValueError, match="different artifact"):
            db.register(conflicting)
        assert db.lookup(compiled_small.name) is compiled_small

    def test_replace_overwrites_explicitly(self, cluster,
                                           compiled_small):
        import dataclasses
        db = BitstreamDB(cluster.footprint)
        db.register(compiled_small)
        updated = dataclasses.replace(
            compiled_small, fmax_mhz=compiled_small.fmax_mhz + 1.0)
        db.register(updated, replace=True)
        assert db.lookup(compiled_small.name) is updated
        assert len(db) == 1


class TestPlacement:
    def test_boards_and_spanning(self):
        p = Placement(mapping={0: (0, 1), 1: (0, 2), 2: (1, 0)})
        assert p.boards == [0, 1]
        assert p.spans_boards
        assert p.blocks_on(0) == [1, 2]
        assert p.board_of(2) == 1

    def test_single_board(self):
        p = Placement(mapping={0: (2, 3)})
        assert not p.spans_boards
        assert p.num_boards == 1

    def test_validate_coverage(self):
        p = Placement(mapping={0: (0, 0), 2: (0, 1)})
        with pytest.raises(ValueError, match="covers virtual blocks"):
            p.validate(3)

    def test_validate_no_reuse(self):
        p = Placement(mapping={0: (0, 0), 1: (0, 0)})
        with pytest.raises(ValueError, match="reuses"):
            p.validate(2)
