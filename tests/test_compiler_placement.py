"""Tests for the quadratic placement loop (Section 4.2)."""

import pytest

from repro.compiler.packing import GreedyPacker
from repro.compiler.placement import BlockGrid, QuadraticPlacer
from repro.fabric.resources import ResourceVector
from repro.netlist.netlist import Netlist, PortDirection
from repro.netlist.primitives import PrimitiveType


def pipeline_netlist(n_stage=24, width=32):
    nl = Netlist("pipe")
    prims = [nl.add_primitive(PrimitiveType.LUT) for _ in range(n_stage)]
    for a, b in zip(prims, prims[1:]):
        nl.add_net(a, [b], width_bits=width)
    inp = nl.add_port("in", PortDirection.INPUT, width)
    out = nl.add_port("out", PortDirection.OUTPUT, width)
    nl.add_net(inp.primitive_uid, [prims[0]], width_bits=width)
    nl.add_net(prims[-1], [out.primitive_uid], width_bits=width)
    return nl


class TestBlockGrid:
    def test_grid_shape_square_ish(self):
        grid = BlockGrid(num_blocks=6, capacity=ResourceVector(lut=10))
        assert grid.cols == 3 and grid.rows == 2

    def test_single_block(self):
        grid = BlockGrid(num_blocks=1, capacity=ResourceVector(lut=10))
        assert grid.center(0) == (0.5, 0.5)

    def test_center_out_of_range(self):
        grid = BlockGrid(num_blocks=4, capacity=ResourceVector(lut=10))
        with pytest.raises(IndexError):
            grid.center(4)

    def test_nearest_block_clamps(self):
        grid = BlockGrid(num_blocks=4, capacity=ResourceVector(lut=10))
        assert grid.nearest_block(-5.0, -5.0) == 0
        assert grid.nearest_block(100.0, 100.0) == 3

    def test_nearest_block_ragged_last_row(self):
        grid = BlockGrid(num_blocks=5, capacity=ResourceVector(lut=10))
        # a point over the missing cell maps to a real block
        assert 0 <= grid.nearest_block(2.5, 1.5) < 5

    def test_neighbors_interior(self):
        grid = BlockGrid(num_blocks=9, capacity=ResourceVector(lut=10))
        assert sorted(grid.neighbors(4)) == [1, 3, 5, 7]

    def test_neighbors_corner(self):
        grid = BlockGrid(num_blocks=9, capacity=ResourceVector(lut=10))
        assert sorted(grid.neighbors(0)) == [1, 3]


class TestQuadraticPlacer:
    def test_all_clusters_assigned_within_grid(self):
        nl = pipeline_netlist()
        cap = ResourceVector(lut=4, dff=4)
        clusters = GreedyPacker(cap, seed=1).pack(nl)
        grid = BlockGrid(num_blocks=4, capacity=ResourceVector(lut=10,
                                                               dff=10))
        result = QuadraticPlacer(grid, seed=1).place(clusters, nl)
        assert set(result.assignment) == {c.uid for c in clusters}
        assert all(0 <= b < 4 for b in result.assignment.values())

    def test_capacity_respected_after_legalization(self):
        nl = pipeline_netlist(n_stage=40)
        cap = ResourceVector(lut=4, dff=4)
        clusters = GreedyPacker(cap, seed=2).pack(nl)
        block_cap = ResourceVector(lut=14, dff=14)
        grid = BlockGrid(num_blocks=4, capacity=block_cap)
        result = QuadraticPlacer(grid, seed=2).place(clusters, nl)
        usage = {b: ResourceVector.zero() for b in range(4)}
        by_uid = {c.uid: c for c in clusters}
        for uid, b in result.assignment.items():
            usage[b] = usage[b] + by_uid[uid].resources
        for b, u in usage.items():
            assert u.fits_in(block_cap), (b, u)

    def test_gap_converges_or_max_iterations(self):
        nl = pipeline_netlist(n_stage=48)
        cap = ResourceVector(lut=4, dff=4)
        clusters = GreedyPacker(cap, seed=3).pack(nl)
        grid = BlockGrid(num_blocks=6, capacity=ResourceVector(lut=12,
                                                               dff=12))
        placer = QuadraticPlacer(grid, seed=3)
        result = placer.place(clusters, nl)
        assert result.gap <= placer.gap_target \
            or result.iterations == placer.max_iterations

    def test_pipeline_ordered_left_to_right(self):
        """IO anchoring pulls the chain input-side left, output right."""
        nl = pipeline_netlist(n_stage=30)
        cap = ResourceVector(lut=3, dff=3)
        clusters = GreedyPacker(cap, seed=4).pack(nl)
        grid = BlockGrid(num_blocks=4, capacity=ResourceVector(lut=12,
                                                               dff=12))
        result = QuadraticPlacer(grid, seed=4).place(clusters, nl)
        # compare early-chain vs late-chain stage positions (the IO pads
        # themselves may share a merged cluster, so probe interior nodes)
        chain = [uid for uid, p in nl.primitives.items()
                 if not p.is_io()]
        early = next(c for c in clusters if chain[2] in c.members)
        late = next(c for c in clusters if chain[-3] in c.members)
        assert early.uid != late.uid
        assert result.positions[early.uid][0] \
            < result.positions[late.uid][0]

    def test_empty_clusters_rejected(self):
        grid = BlockGrid(num_blocks=2, capacity=ResourceVector(lut=10))
        with pytest.raises(ValueError):
            QuadraticPlacer(grid).place([], Netlist())

    def test_deterministic(self):
        nl = pipeline_netlist()
        cap = ResourceVector(lut=4, dff=4)
        grid = BlockGrid(num_blocks=4, capacity=ResourceVector(lut=10,
                                                               dff=10))
        r1 = QuadraticPlacer(grid, seed=9).place(
            GreedyPacker(cap, seed=9).pack(nl), nl)
        r2 = QuadraticPlacer(grid, seed=9).place(
            GreedyPacker(cap, seed=9).pack(nl), nl)
        assert r1.assignment == r2.assignment

    def test_isolated_cluster_handled(self):
        """A netlist with a disconnected primitive must still place."""
        nl = pipeline_netlist(n_stage=10)
        nl.add_primitive(PrimitiveType.LUT)  # no nets
        cap = ResourceVector(lut=3, dff=3)
        clusters = GreedyPacker(cap, seed=5).pack(nl)
        grid = BlockGrid(num_blocks=4, capacity=ResourceVector(lut=8,
                                                               dff=8))
        result = QuadraticPlacer(grid, seed=5).place(clusters, nl)
        assert len(result.assignment) == len(clusters)
