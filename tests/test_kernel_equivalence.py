"""Differential tests: the array runtime kernel vs its scalar oracles.

PR 7 moves the runtime hot paths (policy subset search, resource-DB fit
tests, ring span/contention math) onto flat numpy arrays.  Every array
path keeps the prior implementation as an oracle:

- ``CommunicationAwarePolicy(kernel="scalar")`` is the original
  per-board Python branch-and-bound;
- ``CommunicationAwarePolicy(prune=False)`` is the exhaustive
  enumeration both pruned kernels must agree with;
- ``ResourceDB.verify()`` cross-checks the flat free-count/bitmap
  mirrors against the authoritative per-board sets.

These tests replay randomized workloads through all paths and assert
placements, keys, and counters are *identical* -- not approximately
equal.  Seeds are fixed; every trial is reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import pytest

from repro.cluster.network import RingNetwork
from repro.runtime.policy import CommunicationAwarePolicy
from repro.runtime.resource_db import ResourceDB


@dataclass(frozen=True)
class FakeApp:
    """The minimal app surface the policy touches."""

    name: str
    num_blocks: int
    flows: dict = field(default_factory=dict, hash=False)


def _free_by_board(rng: random.Random, boards: int,
                   blocks_per_board: int) -> dict[int, list[int]]:
    """A random occupancy state: each board keeps a random subset of
    its block addresses free (possibly none)."""
    free = {}
    for b in range(boards):
        k = rng.randint(0, blocks_per_board)
        free[b] = sorted(rng.sample(range(blocks_per_board), k))
    return free


def _policies() -> dict[str, CommunicationAwarePolicy]:
    return {
        "array": CommunicationAwarePolicy(kernel="array"),
        "scalar": CommunicationAwarePolicy(kernel="scalar"),
        "exhaustive": CommunicationAwarePolicy(prune=False),
    }


class TestKernelEquivalence:
    @pytest.mark.parametrize("boards,blocks", [(4, 4), (8, 4), (12, 6)])
    def test_randomized_three_way_equivalence(self, boards, blocks):
        """array == scalar == exhaustive on random states (the PR's
        core acceptance criterion, at differential scale)."""
        rng = random.Random(70_000 + boards)
        network = RingNetwork(boards)
        policies = _policies()
        agreed = 0
        for trial in range(150):
            free = _free_by_board(rng, boards, blocks)
            needed = rng.randint(1, boards * blocks // 2)
            app = FakeApp(name=f"t{trial}", num_blocks=needed)
            outcomes = {name: p.allocate(app, free, network)
                        for name, p in policies.items()}
            first = outcomes["array"]
            for name, placement in outcomes.items():
                if first is None:
                    assert placement is None, name
                else:
                    assert placement is not None, name
                    assert placement.mapping == first.mapping, \
                        f"{name} diverged on trial {trial}"
            if first is not None:
                agreed += 1
        assert agreed > 30  # the trials actually exercised placements

    def test_tie_heavy_states_resolve_identically(self):
        """Satellite: the pruned search and the exhaustive search must
        build the same *types* in their tie-break keys (int span, int
        leftover, tuple subset).  Uniform free counts make every
        same-size subset tie on capacity, so any key-type or ordering
        skew between the paths surfaces as a different winner."""
        boards = 8
        network = RingNetwork(boards)
        policies = _policies()
        for free_count in (1, 2, 3):
            for needed in range(1, boards * free_count + 1):
                free = {b: list(range(free_count))
                        for b in range(boards)}
                app = FakeApp(name=f"tie{free_count}-{needed}",
                              num_blocks=needed)
                outcomes = {name: p.allocate(app, dict(free), network)
                            for name, p in policies.items()}
                mappings = {name: p.mapping for name, p
                            in outcomes.items()}
                assert mappings["array"] == mappings["scalar"] \
                    == mappings["exhaustive"], \
                    f"free={free_count} needed={needed}"

    def test_kernel_equivalence_under_live_contention(self):
        """Same comparison with flows registered on the ring, so span
        tie-breaks interact with real distance sums."""
        boards = 8
        network = RingNetwork(boards)
        network.register_flow("bg1", [0, 3])
        network.register_flow("bg2", [2, 6, 7])
        rng = random.Random(7)
        policies = _policies()
        for trial in range(60):
            free = _free_by_board(rng, boards, 4)
            needed = rng.randint(1, 12)
            app = FakeApp(name=f"c{trial}", num_blocks=needed)
            outcomes = [p.allocate(app, dict(free), network)
                        for p in policies.values()]
            mappings = [None if o is None else o.mapping
                        for o in outcomes]
            assert mappings[0] == mappings[1] == mappings[2]

    def test_search_counters_match_scalar(self):
        """The array kernel's visited/pruned counters are identical to
        the scalar kernel's by construction -- the telemetry the golden
        traces assert on."""
        from repro.obs.tracer import Tracer
        boards = 8
        network = RingNetwork(boards)
        rng = random.Random(21)
        for trial in range(40):
            free = _free_by_board(rng, boards, 4)
            needed = rng.randint(1, 10)
            app = FakeApp(name=f"s{trial}", num_blocks=needed)
            counts = {}
            for kernel in ("array", "scalar"):
                policy = CommunicationAwarePolicy(kernel=kernel)
                tracer = Tracer()
                policy.tracer = tracer
                policy.allocate(app, dict(free), network)
                events = [e for e in tracer.entries()
                          if e["name"] == "policy.allocate"]
                counts[kernel] = [
                    (e["fields"]["visited"], e["fields"]["pruned"],
                     e["fields"]["rounds"], tuple(e["fields"]["boards"]))
                    for e in events]
            assert counts["array"] == counts["scalar"], trial

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            CommunicationAwarePolicy(kernel="simd")


class TestResourceDBArrayMirrors:
    def _db(self, cluster) -> ResourceDB:
        return ResourceDB(cluster)

    def test_random_walk_keeps_mirrors_consistent(self, cluster):
        """allocate/release/fail/repair in random order; verify() cross
        checks the flat arrays against the per-board sets after every
        step."""
        db = self._db(cluster)
        rng = random.Random(99)
        live: dict[int, list] = {}
        rid = 0
        failed: set[int] = set()
        for _ in range(300):
            roll = rng.random()
            if roll < 0.5:
                # allocate 1..4 blocks from whatever is free
                free = [(b, i)
                        for b, blocks in db.free_by_board().items()
                        for i in blocks]
                want = rng.randint(1, 4)
                if len(free) >= want:
                    addrs = rng.sample(free, want)
                    db.allocate(rid, addrs)
                    live[rid] = addrs
                    rid += 1
            elif roll < 0.8 and live:
                victim = rng.choice(sorted(live))
                db.release(victim)
                del live[victim]
            elif roll < 0.9 and not failed:
                candidates = [b for b in range(len(cluster.boards))
                              if not any(a[0] == b
                                         for addrs in live.values()
                                         for a in addrs)]
                if candidates:
                    board = rng.choice(candidates)
                    db.set_board_failed(board)
                    failed.add(board)
            elif failed:
                board = failed.pop()
                db.set_board_repaired(board)
            db.verify()

    def test_fit_mask_matches_free_counts(self, cluster):
        db = self._db(cluster)
        rng = random.Random(5)
        taken = []
        for b, blocks in db.free_by_board().items():
            for i in blocks:
                if rng.random() < 0.4:
                    taken.append((b, i))
        if taken:
            db.allocate(1, taken)
        counts = {b: len(addrs)
                  for b, addrs in db.free_by_board().items()}
        ids = db.board_ids_array()
        for needed in range(0, 5):
            mask = db.fit_mask(needed)
            for row, board in enumerate(ids.tolist()):
                assert bool(mask[row]) == (counts[board] >= needed)

    def test_total_free_blocks_is_o1_and_correct(self, cluster):
        db = self._db(cluster)
        total = sum(len(a) for a in db.free_by_board().values())
        assert db.total_free_blocks() == total
        board, blocks = next(iter(db.free_by_board().items()))
        first = [(board, i) for i in blocks[:2]]
        db.allocate(7, first)
        assert db.total_free_blocks() == total - len(first)
        db.release(7)
        assert db.total_free_blocks() == total


class TestControllerFastPath:
    """``try_deploy`` short-circuits the free-map materialization when
    the default policy runs untraced (the ``allocate_fast`` path).  A
    traced controller takes the original slow path -- both must place
    every request identically."""

    def _drive(self, traced: bool, compiled_small, compiled_medium,
               compiled_large):
        from repro.cluster.cluster import make_cluster
        from repro.obs.tracer import Tracer
        from repro.runtime.controller import SystemController

        controller = SystemController(make_cluster(num_boards=4))
        if traced:
            controller.attach_tracer(Tracer())
        apps = [compiled_small, compiled_medium, compiled_large]
        rng = random.Random(11)
        mappings = []
        rid = 0
        for step in range(60):
            if controller.deployments and rng.random() < 0.4:
                victim = rng.choice(sorted(controller.deployments))
                controller.release(controller.deployments[victim],
                                   now=float(step))
                mappings.append(("release", victim))
            else:
                app = rng.choice(apps)
                d = controller.try_deploy(app, rid, float(step))
                mappings.append(
                    ("deploy", rid,
                     None if d is None
                     else tuple(sorted(d.placement.mapping.items()))))
                rid += 1
        return mappings

    def test_fast_path_matches_traced_path(self, compiled_small,
                                           compiled_medium,
                                           compiled_large):
        fast = self._drive(False, compiled_small, compiled_medium,
                           compiled_large)
        slow = self._drive(True, compiled_small, compiled_medium,
                           compiled_large)
        assert fast == slow

    def test_fast_path_respects_guard_exclusions(self, compiled_small):
        from repro.cluster.cluster import make_cluster
        from repro.runtime.controller import SystemController
        from repro.runtime.guard import DegradedModeGuard, GuardConfig

        controller = SystemController(make_cluster(num_boards=4))
        guard = DegradedModeGuard(GuardConfig(failure_threshold=1))
        controller.attach_guard(guard)
        guard.record_board_failure(0, now=1.0)
        assert 0 in guard.excluded_boards()
        for rid in range(6):
            d = controller.try_deploy(compiled_small, rid, 2.0)
            assert d is not None
            assert 0 not in d.placement.boards


class TestRingArrayMath:
    def test_span_cost_matches_pairwise_sum(self):
        net = RingNetwork(9)
        rng = random.Random(3)
        for _ in range(50):
            members = rng.sample(range(9), rng.randint(1, 6))
            expected = sum(
                net.distance(a, b)
                for i, a in enumerate(members)
                for b in members[i + 1:])
            assert net.span_cost(members) == expected

    def test_peak_segment_flows_matches_scan(self):
        net = RingNetwork(8)
        net.register_flow("a", [0, 1, 2])
        net.register_flow("b", [1, 2, 3])
        net.register_flow("c", [6, 7])
        scan = max(net.flows_on_segment(s) for s in range(8))
        assert net.peak_segment_flows() == scan
        net.release_flow("b")
        scan = max(net.flows_on_segment(s) for s in range(8))
        assert net.peak_segment_flows() == scan

    def test_contention_counts_stay_python_ints(self):
        """np.int64 leaking out of the array math would break JSON
        trace export; the accessors must cast."""
        net = RingNetwork(6)
        net.register_flow("x", [0, 3])
        assert type(net.distance(0, 3)) is int
        assert type(net.span_cost([0, 2, 4])) is int
        assert type(net.flows_on_segment(0)) is int
        assert type(net.peak_segment_flows()) is int


class TestSplitKernelEquivalence:
    """The vectorized ``split_virtual_blocks`` vs the scalar oracle.

    The array kernel must be counter-exact: identical assignments on
    random flow graphs (self-flows included), through the memoized
    adjacency path, and on degenerate single-block apps.
    """

    def _random_app(self, rng: random.Random, n: int,
                    name: str) -> FakeApp:
        flows: dict = {}
        for _ in range(rng.randint(0, 3 * n)):
            src, dst = rng.randrange(n), rng.randrange(n)  # self ok
            flows[(src, dst)] = flows.get((src, dst), 0.0) \
                + rng.choice([1.0, 2.0, 64.0, 1024.0])
        return FakeApp(name=name, num_blocks=n, flows=flows)

    def _random_quotas(self, rng: random.Random,
                       n: int) -> list[tuple[int, int]]:
        boards = rng.sample(range(40), rng.randint(1, min(4, n)))
        quotas, left = [], n
        for i, board in enumerate(boards):
            rest = len(boards) - i - 1
            take = left - rest if rest else left
            cap = rng.randint(1, max(1, take)) if rest else left
            quotas.append((board, cap + rng.randint(0, 2)))
            left -= min(cap, left)
        return quotas

    def test_randomized_flow_graphs_match_scalar(self):
        from repro.runtime.policy import split_virtual_blocks
        rng = random.Random(91_000)
        checked = 0
        for trial in range(200):
            n = rng.randint(1, 12)
            app = self._random_app(rng, n, f"s{trial}")
            quotas = self._random_quotas(rng, n)
            if sum(c for _, c in quotas) < n:
                continue
            vec = split_virtual_blocks(app, quotas, kernel="array")
            ref = split_virtual_blocks(app, quotas, kernel="scalar")
            assert vec == ref, f"trial {trial}: {app.flows} {quotas}"
            checked += 1
        assert checked > 150

    def test_tie_heavy_uniform_flows_match(self):
        """All-equal weights tie every greedy pick; argmax-first must
        reproduce the scalar max()'s first-wins tie-break."""
        from repro.runtime.policy import split_virtual_blocks
        rng = random.Random(92_000)
        for trial in range(60):
            n = rng.randint(2, 10)
            flows = {(a, b): 8.0 for a in range(n) for b in range(n)
                     if a != b and rng.random() < 0.5}
            app = FakeApp(name=f"u{trial}", num_blocks=n, flows=flows)
            quotas = self._random_quotas(rng, n)
            if sum(c for _, c in quotas) < n:
                continue
            assert split_virtual_blocks(app, quotas, kernel="array") \
                == split_virtual_blocks(app, quotas, kernel="scalar")

    def test_single_block_degenerate_app(self):
        from repro.runtime.policy import split_virtual_blocks
        app = FakeApp(name="one", num_blocks=1,
                      flows={(0, 0): 99.0})  # self-flow only
        for quotas in ([(5, 1)], [(3, 4)], [(2, 1), (7, 9)]):
            assert split_virtual_blocks(app, quotas, kernel="array") \
                == split_virtual_blocks(app, quotas, kernel="scalar") \
                == {0: quotas[0][0]}

    def test_memoized_adjacency_path_matches_cold(self):
        """Second call hits every cache layer; the answer must not
        drift from the cold run's."""
        from repro.runtime import policy as policy_mod
        from repro.runtime.policy import split_virtual_blocks
        rng = random.Random(93_000)
        app = self._random_app(rng, 9, "memo")
        quotas = [(0, 5), (1, 4)]
        policy_mod._clear_split_caches()
        cold = split_virtual_blocks(app, quotas, kernel="array")
        warm = split_virtual_blocks(app, quotas, kernel="array")
        relabeled = split_virtual_blocks(app, [(6, 5), (2, 4)],
                                         kernel="array")
        assert cold == warm
        assert relabeled == {vb: {0: 6, 1: 2}[b]
                             for vb, b in cold.items()}

    def test_unknown_kernel_rejected(self):
        from repro.runtime.policy import split_virtual_blocks
        app = FakeApp(name="k", num_blocks=2, flows={})
        with pytest.raises(ValueError):
            split_virtual_blocks(app, [(0, 2)], kernel="gpu")
