"""Regression tests for three availability-accounting bugs.

Each test pins one fix:

1. ``SystemController.snapshot``/``restore`` dropped the
   ``model_dram_contention`` flag, so a restarted controller stopped
   charging the DRAM-contention slowdown it was configured with;
2. ``_average_summaries`` reported replica 0's ``num_requests`` instead
   of the replica mean -- under fault schedules replicas complete
   different numbers of requests, so the reported count misstated the
   set;
3. the requeue-redeploy path overwrote ``record.reconfig_time_s`` with
   ``=`` while the migration path accumulates with ``+=``, so an
   eviction victim's earlier (real) reconfigurations vanished from
   ``mean_reconfig_s``.
"""

from __future__ import annotations

import math

import pytest

from repro.cluster.cluster import make_cluster
from repro.faults.schedule import BoardDown, BoardUp, FaultSchedule
from repro.runtime.bitstream_db import BitstreamDB
from repro.runtime.controller import SystemController
from repro.sim.experiment import _average_summaries, run_experiment
from repro.sim.metrics import SummaryMetrics
from repro.sim.workload import Request


class TestSnapshotCarriesDramContentionFlag:
    def test_flag_survives_restart(self, cluster):
        controller = SystemController(cluster,
                                      model_dram_contention=True)
        restored = SystemController.restore(
            cluster, controller.snapshot(),
            BitstreamDB(cluster.footprint))
        assert restored.model_dram_contention is True

    def test_default_stays_off(self, cluster):
        controller = SystemController(cluster)
        restored = SystemController.restore(
            cluster, controller.snapshot(),
            BitstreamDB(cluster.footprint))
        assert restored.model_dram_contention is False

    def test_legacy_snapshot_without_flag(self, cluster):
        """Snapshots taken before the fix have no flag: restore must
        fall back to off, not crash."""
        snapshot = SystemController(cluster).snapshot()
        snapshot.pop("model_dram_contention")
        restored = SystemController.restore(
            cluster, snapshot, BitstreamDB(cluster.footprint))
        assert restored.model_dram_contention is False


def _summary(num_requests: int, mean_response_s: float) -> SummaryMetrics:
    return SummaryMetrics(
        manager="m", num_requests=num_requests,
        mean_response_s=mean_response_s, p50_response_s=0.0,
        p95_response_s=0.0, mean_wait_s=0.0, mean_service_s=0.0,
        makespan_s=0.0, block_utilization=0.0,
        block_utilization_pressured=0.0, mean_concurrency=0.0,
        peak_concurrency=0, multi_fpga_fraction=0.0,
        max_latency_overhead=0.0, mean_reconfig_s=0.0)


class TestAverageSummariesAveragesRequestCount:
    def test_unequal_replicas_average(self):
        """Fault replicas complete different counts (permanent
        failures); the report must carry the mean, not replica 0's."""
        averaged = _average_summaries([_summary(120, 10.0),
                                       _summary(90, 20.0),
                                       _summary(105, 30.0)])
        assert averaged.num_requests == pytest.approx(105.0)
        assert averaged.mean_response_s == pytest.approx(20.0)

    def test_single_replica_passthrough(self):
        only = _summary(42, 5.0)
        assert _average_summaries([only]) is only


class TestRequeueAccumulatesReconfigTime:
    def test_victim_counts_both_attempts(self, partition,
                                         compiled_small):
        """A requeued eviction victim redeploys, paying a second real
        reconfiguration; its record must carry the sum of both."""
        from repro.hls.kernels import benchmark
        spec = benchmark("mlp-mnist", "S")
        request = Request(request_id=0, spec=spec, arrival_s=0.0)
        apps = {spec.name: compiled_small}

        clean = run_experiment(
            SystemController(make_cluster(2, partition=partition)),
            [request], apps)
        single = clean.records[0].reconfig_time_s
        assert single > 0.0

        # fail the hosting board mid-service; the victim restarts on
        # the surviving board (fail-requeue loses its progress)
        record = clean.records[0]
        mid = (record.deployed_s + record.reconfig_time_s
               + record.completed_s) / 2
        # the first-fit fresh controller places the lone request on
        # board 0; the interruptions assert below trips if that drifts
        faults = FaultSchedule([BoardDown(time_s=mid, board=0),
                                BoardUp(time_s=mid + 30.0, board=0)])
        faulty = run_experiment(
            SystemController(make_cluster(2, partition=partition)),
            [request], apps, faults=faults, recovery="fail-requeue")
        victim = faulty.records[0]
        assert victim.interruptions == 1
        assert victim.lost_service_s > 0.0
        assert victim.reconfig_time_s == pytest.approx(2 * single)
        assert not math.isnan(victim.completed_s)
