"""run_experiment under fault schedules: the availability contract.

Acceptance criteria under test:
- an empty schedule is zero-cost (summary identical to no ``faults=``);
- fixed seed + fixed schedule => identical summaries and audit logs;
- one board fail-stop never crashes or starves the run -- every request
  completes or is recorded as permanently failed, and all resources are
  conserved afterwards;
- migrate-on-failure yields strictly more goodput than fail-requeue.
"""

from __future__ import annotations

import pytest

from repro.baselines.per_device import PerDeviceManager
from repro.faults import (
    BoardDown,
    BoardUp,
    FaultInjector,
    FaultSchedule,
    LinkDegraded,
    LinkRestored,
    ReconfigTransientFault,
)
from repro.runtime.controller import SystemController
from repro.sim.experiment import run_experiment
from repro.sim.workload import Request


@pytest.fixture(scope="module")
def requests(compiled_small, compiled_medium, compiled_large):
    """A mixed S/M/L arrival stream straddling the fault windows."""
    specs = [compiled_small.spec, compiled_medium.spec,
             compiled_large.spec]
    return [Request(request_id=i, spec=specs[i % 3],
                    arrival_s=1.0 + 2.5 * i)
            for i in range(30)]


@pytest.fixture
def vital(cluster):
    return SystemController(cluster)


ONE_FAILURE = FaultSchedule([
    BoardDown(time_s=15.0, board=1),
    BoardUp(time_s=70.0, board=1),
])


def _assert_conserved(controller: SystemController) -> None:
    """Post-run: nothing may leak -- blocks, DRAM, flows, health."""
    assert controller.deployments == {}
    assert controller.resource_db.allocated_count() == 0
    assert controller.resource_db.failed_count() == 0
    for memory in controller.memories.values():
        assert memory.used_bytes() == 0
    assert controller.failed_boards() == []


class TestZeroCost:
    def test_empty_schedule_is_bit_identical(self, cluster, requests,
                                             compiled_apps):
        plain = run_experiment(SystemController(cluster), requests,
                               compiled_apps)
        empty = run_experiment(SystemController(cluster), requests,
                               compiled_apps,
                               faults=FaultSchedule.empty())
        assert empty.summary == plain.summary
        assert plain.summary.goodput_fraction == 1.0
        assert plain.summary.interruptions == 0.0

    def test_none_and_empty_both_skip_fault_machinery(
            self, cluster, requests, compiled_apps):
        result = run_experiment(SystemController(cluster), requests,
                                compiled_apps, faults=None)
        assert result.summary.mean_time_to_recovery_s == 0.0


class TestDeterminism:
    def test_identical_runs_identical_results(self, cluster, requests,
                                              compiled_apps):
        runs = []
        for _ in range(2):
            controller = SystemController(cluster)
            result = run_experiment(controller, requests,
                                    compiled_apps, faults=ONE_FAILURE,
                                    recovery="migrate")
            runs.append((result.summary,
                         controller.audit.to_jsonl()))
        (s1, log1), (s2, log2) = runs
        assert s1 == s2
        # byte-identical audit trail modulo the per-instance sequence
        assert log1 == log2

    def test_exponential_schedule_is_replayable(self, cluster,
                                                requests,
                                                compiled_apps):
        def sched():
            return FaultSchedule.exponential(
                seed=21, horizon_s=120.0, num_boards=4,
                board_mtbf_s=60.0, board_mttr_s=15.0)
        r1 = run_experiment(SystemController(cluster), requests,
                            compiled_apps, faults=sched(),
                            recovery="requeue")
        r2 = run_experiment(SystemController(cluster), requests,
                            compiled_apps, faults=sched(),
                            recovery="requeue")
        assert r1.summary == r2.summary


class TestBoardFailure:
    def test_all_requests_accounted_for(self, vital, requests,
                                        compiled_apps):
        result = run_experiment(vital, requests, compiled_apps,
                                faults=ONE_FAILURE, recovery="requeue")
        finished = sum(1 for r in result.records if r.finished)
        failed = sum(1 for r in result.records if r.permanently_failed)
        assert finished + failed == len(requests)
        assert result.summary.interruptions >= 1
        _assert_conserved(vital)

    def test_interrupted_requests_tracked_per_record(
            self, vital, requests, compiled_apps):
        result = run_experiment(vital, requests, compiled_apps,
                                faults=ONE_FAILURE, recovery="requeue")
        hit = [r for r in result.records if r.interruptions > 0]
        assert hit
        assert all(r.lost_service_s >= 0.0 for r in hit)

    def test_migration_preserves_progress(self, vital, requests,
                                          compiled_apps):
        result = run_experiment(vital, requests, compiled_apps,
                                faults=ONE_FAILURE, recovery="migrate")
        assert result.summary.goodput_fraction == 1.0
        assert result.summary.recoveries >= 1
        assert result.summary.mean_time_to_recovery_s > 0.0
        _assert_conserved(vital)

    def test_migrate_beats_requeue_on_goodput(self, cluster, requests,
                                              compiled_apps):
        requeue = run_experiment(
            SystemController(cluster), requests, compiled_apps,
            faults=ONE_FAILURE, recovery="fail-requeue").summary
        migrate = run_experiment(
            SystemController(cluster), requests, compiled_apps,
            faults=ONE_FAILURE, recovery="migrate-on-failure").summary
        assert migrate.goodput_fraction > requeue.goodput_fraction
        assert requeue.goodput_fraction < 1.0

    def test_whole_cluster_loss_degrades_gracefully(
            self, cluster, requests, compiled_apps):
        vital = SystemController(cluster)
        schedule = FaultSchedule([
            BoardDown(time_s=55.0, board=b) for b in range(4)])
        result = run_experiment(vital, requests, compiled_apps,
                                faults=schedule, recovery="requeue")
        failed = [r for r in result.records if r.permanently_failed]
        assert failed  # capacity never came back for the tail
        assert all(not r.finished for r in failed)
        # injector.reset healed the cluster for the next experiment
        assert vital.failed_boards() == []

    def test_per_device_survives_the_same_schedule(
            self, cluster, requests, compiled_apps):
        result = run_experiment(PerDeviceManager(cluster), requests,
                                compiled_apps, faults=ONE_FAILURE,
                                recovery="migrate")
        finished = sum(1 for r in result.records if r.finished)
        failed = sum(1 for r in result.records if r.permanently_failed)
        assert finished + failed == len(requests)
        # no relocatable bitstreams: migration can never kick in
        assert result.summary.recoveries == 0.0


class TestLinkFaults:
    def test_degradation_is_healed_after_the_run(self, cluster, vital,
                                                 requests,
                                                 compiled_apps):
        schedule = FaultSchedule([
            LinkDegraded(time_s=5.0, segment=0, capacity_fraction=0.5),
            LinkRestored(time_s=60.0, segment=0),
        ])
        run_experiment(vital, requests, compiled_apps, faults=schedule)
        assert cluster.network.degraded_segments() == {}

    def test_unrestored_degradation_is_healed_by_reset(
            self, cluster, vital, requests, compiled_apps):
        schedule = FaultSchedule([
            LinkDegraded(time_s=5.0, segment=2,
                         capacity_fraction=0.25)])
        run_experiment(vital, requests, compiled_apps, faults=schedule)
        assert cluster.network.degraded_segments() == {}

    def test_degraded_segment_raises_contention(self):
        # a private ring: the session cluster's network carries flows
        # other tests registered, which would shift absolute factors
        from repro.cluster.network import RingNetwork
        network = RingNetwork(num_nodes=4)
        network.degrade_segment(0, 0.5)
        factor = network.contention_factor([0, 1])
        assert factor == pytest.approx(2.0)  # 1 flow / 0.5 capacity
        network.restore_all_segments()
        assert network.contention_factor([0, 1]) == 1

    def test_bandwidth_scales_with_degradation(self):
        from repro.cluster.network import RingNetwork
        network = RingNetwork(num_nodes=4)
        nominal = network.bandwidth_between(0, 1)
        network.degrade_segment(0, 0.5)
        assert network.bandwidth_between(0, 1) == \
            pytest.approx(nominal * 0.5)
        network.restore_segment(0)
        assert network.bandwidth_between(0, 1) == nominal


class TestReconfigFaultsInSim:
    def test_transient_icap_faults_do_not_lose_work(
            self, cluster, requests, compiled_apps):
        schedule = FaultSchedule([
            ReconfigTransientFault(time_s=0.0, board=b, attempts=2)
            for b in range(4)])
        vital = SystemController(cluster)
        faulty = run_experiment(vital, requests, compiled_apps,
                                faults=schedule)
        clean = run_experiment(SystemController(cluster), requests,
                               compiled_apps)
        assert faulty.summary.goodput_fraction == 1.0
        assert faulty.summary.mean_reconfig_s > \
            clean.summary.mean_reconfig_s
        _assert_conserved(vital)


class TestInjectorCapabilities:
    def test_unsupported_events_counted_not_raised(self):
        class Inert:
            pass

        injector = FaultInjector(Inert())
        assert injector.apply(BoardDown(time_s=0.0, board=0)) == []
        injector.apply(LinkDegraded(time_s=0.0, segment=0,
                                    capacity_fraction=0.5))
        injector.apply(ReconfigTransientFault(time_s=0.0, board=0))
        assert injector.unsupported == {
            "BoardDown": 1, "LinkDegraded": 1,
            "ReconfigTransientFault": 1}

    def test_unknown_event_type_raises(self, cluster):
        injector = FaultInjector(SystemController(cluster))
        with pytest.raises(TypeError):
            injector.apply("not-an-event")


BACK_TO_BACK = FaultSchedule([
    BoardDown(time_s=15.0, board=1),
    BoardUp(time_s=30.0, board=1),
    BoardDown(time_s=35.0, board=1),  # refails inside recovery window
    BoardUp(time_s=70.0, board=1),
])


class TestBackToBackFaults:
    """The same board fail-stops twice in quick succession; every
    eviction is accounted exactly once (a request sitting in the queue
    when the second outage lands must not gain a phantom
    interruption)."""

    @pytest.mark.parametrize("recovery", ["requeue", "migrate"])
    def test_interruptions_match_evictions_exactly(
            self, cluster, requests, compiled_apps, recovery):
        from repro.obs.tracer import Tracer
        tracer = Tracer()
        controller = SystemController(cluster)
        controller.tracer = tracer
        result = run_experiment(controller, requests, compiled_apps,
                                faults=BACK_TO_BACK,
                                recovery=recovery, tracer=tracer)
        evict_events = [e for e in tracer.entries()
                        if e["name"] == "sim.evict"]
        interruptions = sum(r.interruptions
                            for r in result.records)
        assert interruptions == len(evict_events)
        assert interruptions >= 1  # the schedule actually hit work
        summary = result.summary
        assert summary.interruptions == interruptions
        # every request either finished or is recorded as failed
        assert summary.num_requests + summary.permanently_failed \
            == len(requests)
        _assert_conserved(controller)

    @pytest.mark.parametrize("recovery", ["requeue", "migrate"])
    def test_back_to_back_is_deterministic(self, cluster, requests,
                                           compiled_apps, recovery):
        runs = [run_experiment(SystemController(cluster), requests,
                               compiled_apps, faults=BACK_TO_BACK,
                               recovery=recovery).summary
                for _ in range(2)]
        assert runs[0] == runs[1]

    def test_requeued_victim_is_not_reinterrupted_in_queue(
            self, cluster, requests, compiled_apps):
        """Records interrupted twice really ran twice: each extra
        interruption implies an extra deployment (audit evidence), not
        a double count of one eviction."""
        controller = SystemController(cluster)
        result = run_experiment(controller, requests, compiled_apps,
                                faults=BACK_TO_BACK,
                                recovery="requeue")
        deploys_by_request: dict[int, int] = {}
        for entry in controller.audit.entries():
            if entry.event.value == "deploy":
                deploys_by_request[entry.request_id] = \
                    deploys_by_request.get(entry.request_id, 0) + 1
        for record in result.records:
            if record.interruptions:
                assert deploys_by_request.get(record.request_id, 0) \
                    >= record.interruptions
